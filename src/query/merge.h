// The query-time merge layer for sharded coordinators.
//
// A sharded deployment runs N independent coordinator instances, each
// owning a consistent-hash partition of the element space (see
// core/shard_router.h). Queries therefore need a merge step: combine
// the N per-shard answers into the one answer the unsharded coordinator
// would give. This module holds that step as typed mergers, one per
// answer shape, so the protocol Traits declare *which* merge they need
// instead of hand-rolling union loops inside core::Deployment::sample():
//
//   * BottomSMerger — plain bottom-s of the union of per-shard bottom-s
//     samples (infinite-window protocol). Exact: every member of the
//     global bottom-s is, within its own partition, among the s
//     smallest hashes, so it appears in its shard's sample.
//   * PerCopyMinMerger — per-copy min-hash (with-replacement sampler:
//     s independent copies, copy j's sample is the min-hash element of
//     copy j's hash function, which is partition-independent).
//   * SlidingValidityMerger — the validity-window-aware merger for the
//     sliding protocols: per-shard window samples carry expiry slots,
//     and a tuple whose expiry is at or before the query slot has left
//     the window and must not be merged. Exact for the bottom-s window
//     protocols by the same partition argument, applied to the valid
//     tuples only; the s-copy lazy protocol merges one instance per
//     copy so each copy's expiry is respected independently.
//
// All mergers are tiny value types: construct at query time, feed every
// shard's answer, read the result. None of them allocate beyond the
// result container.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/bottom_s_sample.h"
#include "stream/element.h"
#include "treap/dominance_set.h"

namespace dds::query {

/// Bottom-s of the union of per-shard bottom-s samples — the exact
/// global bottom-s when the shards partition the element space.
class BottomSMerger {
 public:
  explicit BottomSMerger(std::size_t sample_size) : merged_(sample_size) {}

  /// Feeds one shard's whole sample.
  void add(const core::BottomSSample& shard_sample) {
    for (const auto& entry : shard_sample.entries()) {
      merged_.offer(entry.element, entry.hash);
    }
  }
  /// Feeds a single entry (restore/replay paths).
  void offer(stream::Element element, std::uint64_t hash) {
    merged_.offer(element, hash);
  }

  const core::BottomSSample& result() const noexcept { return merged_; }

 private:
  core::BottomSSample merged_;
};

/// Per-copy minimum-hash merge for the s-parallel-copies samplers: copy
/// j's global sample element is the smallest copy-j hash across shards
/// (each shard holds the minimum over its own partition).
class PerCopyMinMerger {
 public:
  explicit PerCopyMinMerger(std::size_t num_copies) : copies_(num_copies) {}

  /// Offers shard's copy-`copy` winner; keeps the smaller hash.
  void offer(std::size_t copy, stream::Element element, std::uint64_t hash) {
    Slot& slot = copies_[copy];
    if (!slot.has || hash < slot.hash) {
      slot.has = true;
      slot.element = element;
      slot.hash = hash;
    }
  }

  /// Winners of the copies that received any offer, in copy order — the
  /// same shape MultiSlidingCoordinator/WithReplacement queries return.
  std::vector<stream::Element> elements() const {
    std::vector<stream::Element> out;
    out.reserve(copies_.size());
    for (const Slot& slot : copies_) {
      if (slot.has) out.push_back(slot.element);
    }
    return out;
  }

 private:
  struct Slot {
    bool has = false;
    stream::Element element = 0;
    std::uint64_t hash = 0;
  };
  std::vector<Slot> copies_;
};

/// Validity-window-aware merge of per-shard sliding-window samples: the
/// bottom-s (by hash) of the offered tuples that are still inside the
/// window at the query slot. A tuple expiring exactly AT the query slot
/// is out — window membership is t_expiry > now, matching every site's
/// and coordinator's own expiry test. Duplicate elements (possible when
/// merging restored ensembles) keep their freshest expiry.
class SlidingValidityMerger {
 public:
  SlidingValidityMerger(std::size_t sample_size, sim::Slot now);

  /// Offers one per-shard candidate; expired tuples are discarded.
  void offer(const treap::Candidate& candidate);
  void offer(const std::optional<treap::Candidate>& candidate) {
    if (candidate) offer(*candidate);
  }
  /// Feeds a shard's whole bottom-s answer.
  void add(const std::vector<treap::Candidate>& shard_sample);

  /// The merged bottom-s, hash-ascending. Exact global window bottom-s
  /// when each shard offered its partition's window bottom-s.
  const std::vector<treap::Candidate>& bottom_s() const noexcept {
    return best_;
  }
  /// The merged minimum (== bottom_s().front()), or nullopt when every
  /// offered tuple had expired.
  std::optional<treap::Candidate> min_hash() const {
    if (best_.empty()) return std::nullopt;
    return best_.front();
  }

  sim::Slot now() const noexcept { return now_; }
  std::size_t sample_size() const noexcept { return s_; }

 private:
  std::size_t s_;
  sim::Slot now_;
  std::vector<treap::Candidate> best_;  // hash-ascending, <= s_ entries
};

/// KMV distinct-count estimate over a merged window bottom-s (the
/// sliding analogue of estimate_distinct): exact while fewer than
/// `sample_size` tuples are in the window, (s-1)/u_s once the sample is
/// full. `bottom_s` must be hash-ascending (as the mergers return it).
double estimate_window_distinct(const std::vector<treap::Candidate>& bottom_s,
                                std::size_t sample_size);

}  // namespace dds::query
