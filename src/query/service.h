// Multi-tenant multi-width query serving from ONE shared candidate
// structure.
//
// Scenario: M tenants each hold a standing distinct-sample query over
// the same stream(s), but at different window widths w_1 <= w_2 <= ...
// <= w_M <= W. The naive deployment runs M independent
// WindowedBottomSSamplers — M hash passes per arrival and M candidate
// structures of O(s log(M_d/s)) tuples each. This module serves every
// tenant from a SINGLE sampler per stream, keyed at the registry's
// maximum width W:
//
//   * Ingest once. Every arrival is hashed once (batched: one
//     hash-kind dispatch per batch, see hash::HashFunction::hash_batch)
//     and inserted once, with expiry = arrival + W.
//
//   * Serve any width by expiry threshold. A tuple observed at slot a
//     lies inside the width-w window ending at `now` iff a > now - w,
//     i.e. iff expiry > now + (W - w). So tenant i's answer is "the
//     bottom-s among tuples with expiry above a threshold" — an
//     expected O(log n + s) walk of the by-hash order-statistic treap
//     guided by its max-expiry subtree aggregate
//     (treap::SDominanceSet::bottom_s_valid_after).
//
//   * Exactness. Any member of the width-w window's true bottom-s has
//     fewer than s smaller-hash tuples in the w-window; each of those
//     expires later than it does (arrived later), so the member has
//     fewer than s smaller-hash LATER-EXPIRING tuples globally and
//     survives s-dominance pruning at width W. Hence the shared
//     structure still holds it, and the thresholded walk returns it —
//     tenant answers are bit-identical to M independent deployments
//     (pinned by tests/tenant_service_test.cpp and the abl15 bench).
//
// Multiple streams: one sampler per stream, all sharing one hash
// function, merged at query time by the same partition argument as the
// sharded coordinator merge (query/merge.h): an element's globally
// freshest arrival lives in some stream, where it is valid at width w
// and beaten by fewer than s smaller hashes, so the union of per-stream
// answers (deduplicated by element, freshest expiry kept) contains the
// exact global bottom-s.
//
// Serving is allocation-free in steady state: per-tenant answer buffers
// and the merge scratch persist across calls (the alloc-audit test
// pins zero allocations on the batched ingest + serve loop).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/windowed_bottom_s.h"
#include "hash/hash_function.h"
#include "sim/message.h"
#include "stream/element.h"
#include "treap/s_dominance_set.h"

namespace dds::query {

/// The shared serving structure: registers tenants at widths up to a
/// fixed maximum, ingests one or more streams once, answers every
/// tenant's standing bottom-s query exactly.
class TenantRegistry {
 public:
  /// `sample_size` is the per-tenant s; `max_width` W bounds every
  /// tenant width; `num_streams` >= 1 independent input streams (all
  /// hashed with the same function — required for the cross-stream
  /// merge to be exact).
  TenantRegistry(std::size_t sample_size, sim::Slot max_width,
                 std::uint32_t num_streams = 1,
                 hash::HashKind hash_kind = hash::HashKind::kMurmur2,
                 std::uint64_t seed = 0x7453764FULL /* "tSvO" */);

  /// Registers a standing query at window width `width` (0 < width <=
  /// max_width()); returns the tenant id used by answer()/estimate().
  std::size_t register_tenant(sim::Slot width);

  /// Observes one arrival on `stream` at slot `t` (non-decreasing).
  void update(std::uint32_t stream, stream::Element element, sim::Slot t);

  /// Batched arrivals on `stream`, all at slot `t`: one hash pass, one
  /// expiry sweep, prefetched inserts — the hot ingest path. Candidate
  /// state lands identical to element-at-a-time update() calls.
  void update_batch(std::uint32_t stream,
                    std::span<const stream::Element> elements, sim::Slot t);

  /// Tenant `tenant`'s exact bottom-s at slot `now` (hash-ascending,
  /// freshest expiry per element), into a reused buffer. Expiries are
  /// rebased to the tenant's own width (arrival + w_i), so the answer
  /// is bit-identical — element, hash, AND expiry — to what a dedicated
  /// width-w_i sampler fed the same stream would return. `now` must be
  /// >= every observed slot and non-decreasing across queries.
  void answer_into(std::size_t tenant, sim::Slot now,
                   std::vector<treap::Candidate>& out);

  /// answer_into() returning a fresh vector (test/debug sugar).
  std::vector<treap::Candidate> answer(std::size_t tenant, sim::Slot now);

  /// KMV distinct-count estimate of tenant `tenant`'s window at `now`
  /// (query::estimate_window_distinct over its exact bottom-s).
  double estimate(std::size_t tenant, sim::Slot now);

  /// Answers EVERY tenant at `now` into persistent per-tenant buffers;
  /// returns the buffer table (index = tenant id). Allocation-free in
  /// steady state.
  const std::vector<std::vector<treap::Candidate>>& serve_all(sim::Slot now);

  std::size_t num_tenants() const noexcept { return widths_.size(); }
  std::uint32_t num_streams() const noexcept {
    return static_cast<std::uint32_t>(samplers_.size());
  }
  std::size_t sample_size() const noexcept { return sample_size_; }
  sim::Slot max_width() const noexcept { return max_width_; }
  sim::Slot tenant_width(std::size_t tenant) const {
    return widths_.at(tenant);
  }

  /// Tuples retained across all streams (the shared-memory metric; an
  /// M-deployment baseline pays ~M times this).
  std::size_t state_size() const noexcept;

  /// Bytes reserved by the samplers plus the serving buffers — the
  /// sub-linear-memory claim abl15 reports (shared vs M separate).
  std::size_t footprint_bytes() const noexcept;

  const core::WindowedBottomSSampler& sampler(std::uint32_t stream = 0) const {
    return samplers_.at(stream);
  }

 private:
  std::size_t sample_size_;
  sim::Slot max_width_;
  std::vector<core::WindowedBottomSSampler> samplers_;  ///< one per stream
  std::vector<sim::Slot> widths_;                       ///< per-tenant width
  /// Per-tenant persistent answer buffers (serve_all's return table).
  std::vector<std::vector<treap::Candidate>> answers_;
  /// Cross-stream merge scratch (union of per-stream answers).
  std::vector<treap::Candidate> merge_scratch_;
  std::vector<treap::Candidate> stream_scratch_;
};

}  // namespace dds::query
