// Element stream generators.
//
// An ElementStream is a finite, single-pass, deterministic-under-seed
// sequence of elements (with duplicates). Experiments construct a fresh
// stream per run; re-creating a stream with the same parameters and seed
// reproduces it exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "stream/element.h"
#include "util/rng.h"

namespace dds::stream {

class ElementStream {
 public:
  virtual ~ElementStream() = default;
  /// Next element, or nullopt at end of stream.
  virtual std::optional<Element> next() = 0;
  /// Total number of elements this stream will produce.
  virtual std::uint64_t length() const noexcept = 0;
};

/// `n` i.i.d. uniform draws over a domain of `domain_size` identifiers.
class UniformStream final : public ElementStream {
 public:
  UniformStream(std::uint64_t n, std::uint64_t domain_size,
                std::uint64_t seed);
  std::optional<Element> next() override;
  std::uint64_t length() const noexcept override { return n_; }

 private:
  std::uint64_t n_;
  std::uint64_t domain_size_;
  std::uint64_t emitted_ = 0;
  util::Xoshiro256StarStar rng_;
};

/// `n` elements, all distinct (identifier i is emitted exactly once, in a
/// pseudo-random-looking but deterministic order). The worst case for a
/// distinct sampler — every arrival is new — and the shape of the
/// lower-bound input (Lemma 9).
class AllDistinctStream final : public ElementStream {
 public:
  AllDistinctStream(std::uint64_t n, std::uint64_t salt);
  std::optional<Element> next() override;
  std::uint64_t length() const noexcept override { return n_; }

 private:
  std::uint64_t n_;
  std::uint64_t salt_;
  std::uint64_t emitted_ = 0;
};

/// Zipf(alpha) draws over ranks 1..domain_size via Hormann's
/// rejection-inversion sampling — O(1) time and space per draw, exact
/// for any alpha > 0 (alpha == 1 handled through the limit form).
/// P(rank = r) proportional to r^-alpha.
class ZipfStream final : public ElementStream {
 public:
  ZipfStream(std::uint64_t n, std::uint64_t domain_size, double alpha,
             std::uint64_t seed);
  std::optional<Element> next() override;
  std::uint64_t length() const noexcept override { return n_; }

  /// Raw Zipf rank draw in [1, domain_size]; exposed for tests.
  std::uint64_t next_rank();

 private:
  double h_integral(double x) const noexcept;
  double h(double x) const noexcept;
  double h_integral_inverse(double x) const noexcept;

  std::uint64_t n_;
  std::uint64_t domain_size_;
  double alpha_;
  std::uint64_t salt_;
  std::uint64_t emitted_ = 0;
  util::Xoshiro256StarStar rng_;
  // Rejection-inversion precomputed constants.
  double h_integral_x1_;
  double h_integral_num_;
  double s_;
};

/// Replays a fixed vector of elements; test helper.
class VectorStream final : public ElementStream {
 public:
  explicit VectorStream(std::vector<Element> elements)
      : elements_(std::move(elements)) {}
  std::optional<Element> next() override {
    if (pos_ >= elements_.size()) return std::nullopt;
    return elements_[pos_++];
  }
  std::uint64_t length() const noexcept override { return elements_.size(); }

 private:
  std::vector<Element> elements_;
  std::size_t pos_ = 0;
};

/// Collects a whole stream into a vector (test helper; do not use on
/// paper-scale streams).
std::vector<Element> drain(ElementStream& stream);

}  // namespace dds::stream
