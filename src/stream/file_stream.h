// FileStream — replay a real trace from disk.
//
// The paper's experiments ran on the CAIDA OC48 and Enron traces, which
// we cannot ship (DESIGN.md §3). Users who hold such data can replay it
// through this adapter: one element per line, either a decimal 64-bit
// identifier or an arbitrary token (hashed to an identifier with
// MurmurHash2, seed 0 — stable across runs). Lines are loaded eagerly
// so length() is known up front; memory is 8 bytes per element.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "stream/generators.h"

namespace dds::stream {

class FileStream final : public ElementStream {
 public:
  /// Throws std::runtime_error if the file cannot be read.
  explicit FileStream(const std::filesystem::path& path);

  std::optional<Element> next() override;
  std::uint64_t length() const noexcept override { return elements_.size(); }

  /// How many lines were parsed as decimal ids vs hashed as tokens.
  std::uint64_t numeric_lines() const noexcept { return numeric_lines_; }
  std::uint64_t token_lines() const noexcept { return token_lines_; }

 private:
  std::vector<Element> elements_;
  std::size_t pos_ = 0;
  std::uint64_t numeric_lines_ = 0;
  std::uint64_t token_lines_ = 0;
};

}  // namespace dds::stream
