// ChurnStream — a workload whose distinct-churn rate is a dial.
//
// Lemma 12 bounds the sliding-window message cost by O(kT b/M): b is
// the peak number of elements per slot whose LAST occurrence is that
// slot (churn) and M the number of distinct in-window elements. Real
// traces fix b/M; this generator sweeps it: each emitted element is a
// brand-new identity with probability `fresh_fraction`, otherwise a
// uniform redraw from the `recency` most recent identities. High
// fresh_fraction => high churn (b ~ per-slot arrivals); low => a stable
// working set whose window membership keeps refreshing (b ~ 0 for the
// persistent identities). The abl9 bench sweeps this dial against the
// Lemma 12 bound.
#pragma once

#include <cstdint>
#include <vector>

#include "stream/generators.h"

namespace dds::stream {

class ChurnStream final : public ElementStream {
 public:
  ChurnStream(std::uint64_t n, double fresh_fraction, std::size_t recency,
              std::uint64_t seed);

  std::optional<Element> next() override;
  std::uint64_t length() const noexcept override { return n_; }

  /// Identities created so far (diagnostics).
  std::uint64_t fresh_count() const noexcept { return next_id_; }

 private:
  std::uint64_t n_;
  double fresh_fraction_;
  std::uint64_t emitted_ = 0;
  std::uint64_t next_id_ = 0;
  std::uint64_t salt_;
  std::vector<Element> recent_;  // ring buffer of recent identities
  std::size_t ring_pos_ = 0;
  util::Xoshiro256StarStar rng_;
};

}  // namespace dds::stream
