#include "stream/file_stream.h"

#include <cctype>
#include <fstream>
#include <stdexcept>

#include "hash/murmur2.h"

namespace dds::stream {

namespace {

bool is_decimal(const std::string& line) noexcept {
  if (line.empty() || line.size() > 20) return false;
  for (char ch : line) {
    if (!std::isdigit(static_cast<unsigned char>(ch))) return false;
  }
  return true;
}

}  // namespace

FileStream::FileStream(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("FileStream: cannot open " + path.string());
  }
  std::string line;
  while (std::getline(in, line)) {
    // Tolerate CRLF traces.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (is_decimal(line)) {
      try {
        elements_.push_back(std::stoull(line));
        ++numeric_lines_;
        continue;
      } catch (const std::out_of_range&) {
        // falls through to token hashing
      }
    }
    elements_.push_back(hash::murmur2_64(line.data(), line.size(), 0));
    ++token_lines_;
  }
}

std::optional<Element> FileStream::next() {
  if (pos_ >= elements_.size()) return std::nullopt;
  return elements_[pos_++];
}

}  // namespace dds::stream
