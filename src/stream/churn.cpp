#include "stream/churn.h"

#include <stdexcept>

namespace dds::stream {

ChurnStream::ChurnStream(std::uint64_t n, double fresh_fraction,
                         std::size_t recency, std::uint64_t seed)
    : n_(n),
      fresh_fraction_(fresh_fraction),
      salt_(util::mix64(seed ^ 0xC4012BULL)),
      rng_(seed) {
  if (fresh_fraction < 0.0 || fresh_fraction > 1.0) {
    throw std::invalid_argument("ChurnStream: fresh_fraction not in [0,1]");
  }
  if (recency == 0) {
    throw std::invalid_argument("ChurnStream: recency must be positive");
  }
  recent_.reserve(recency);
  recent_.resize(recency, 0);
}

std::optional<Element> ChurnStream::next() {
  if (emitted_ >= n_) return std::nullopt;
  ++emitted_;
  const bool fresh =
      next_id_ == 0 || rng_.next_bernoulli(fresh_fraction_);
  if (fresh) {
    const Element e = util::mix64(salt_ + (++next_id_));
    recent_[ring_pos_] = e;
    ring_pos_ = (ring_pos_ + 1) % recent_.size();
    return e;
  }
  const std::size_t live =
      next_id_ < recent_.size() ? static_cast<std::size_t>(next_id_)
                                : recent_.size();
  return recent_[rng_.next_below(live)];
}

}  // namespace dds::stream
