#include "stream/generators.h"

#include <cmath>
#include <stdexcept>

namespace dds::stream {

UniformStream::UniformStream(std::uint64_t n, std::uint64_t domain_size,
                             std::uint64_t seed)
    : n_(n), domain_size_(domain_size), rng_(seed) {
  if (domain_size_ == 0) {
    throw std::invalid_argument("UniformStream: empty domain");
  }
}

std::optional<Element> UniformStream::next() {
  if (emitted_ >= n_) return std::nullopt;
  ++emitted_;
  return util::mix64(rng_.next_below(domain_size_) + 1);
}

AllDistinctStream::AllDistinctStream(std::uint64_t n, std::uint64_t salt)
    : n_(n), salt_(util::mix64(salt)) {}

std::optional<Element> AllDistinctStream::next() {
  if (emitted_ >= n_) return std::nullopt;
  // mix64 is a bijection on u64, so distinct indices map to distinct
  // elements. The salted base offsets different streams to disjoint
  // pre-image ranges (overlap would need two salted bases within n of
  // each other — probability ~ n/2^64).
  return util::mix64(salt_ + (++emitted_));
}

namespace {

/// (exp(x) - 1) / x, stable near 0.
double helper_expm1_ratio(double x) noexcept {
  return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x / 2.0 * (1.0 + x / 3.0);
}

/// log(1 + x) / x, stable near 0.
double helper_log1p_ratio(double x) noexcept {
  return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x / 2.0 + x * x / 3.0;
}

}  // namespace

ZipfStream::ZipfStream(std::uint64_t n, std::uint64_t domain_size, double alpha,
                       std::uint64_t seed)
    : n_(n),
      domain_size_(domain_size),
      alpha_(alpha),
      salt_(util::mix64(seed ^ 0x5A1D0F00DULL)),
      rng_(seed) {
  if (domain_size_ == 0) {
    throw std::invalid_argument("ZipfStream: empty domain");
  }
  if (!(alpha_ > 0.0)) {
    throw std::invalid_argument("ZipfStream: alpha must be > 0");
  }
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_num_ = h_integral(static_cast<double>(domain_size_) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfStream::h_integral(double x) const noexcept {
  const double log_x = std::log(x);
  return helper_expm1_ratio((1.0 - alpha_) * log_x) * log_x;
}

double ZipfStream::h(double x) const noexcept {
  return std::exp(-alpha_ * std::log(x));
}

double ZipfStream::h_integral_inverse(double x) const noexcept {
  double t = x * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // numerical guard, per Hormann
  return std::exp(helper_log1p_ratio(t) * x);
}

std::uint64_t ZipfStream::next_rank() {
  // Hormann & Derflinger rejection-inversion (the scheme used by Apache
  // Commons RNG's RejectionInversionZipfSampler). Expected < 2 rounds.
  while (true) {
    const double u =
        h_integral_num_ + rng_.next_double() * (h_integral_x1_ - h_integral_num_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > domain_size_) {
      k = domain_size_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

std::optional<Element> ZipfStream::next() {
  if (emitted_ >= n_) return std::nullopt;
  ++emitted_;
  return util::mix64(next_rank() ^ salt_);
}

std::vector<Element> drain(ElementStream& stream) {
  std::vector<Element> out;
  out.reserve(stream.length());
  while (auto e = stream.next()) out.push_back(*e);
  return out;
}

}  // namespace dds::stream
