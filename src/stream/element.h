// Stream element model.
//
// The paper's streams carry opaque identifiers (concatenated src/dst IP
// addresses for OC48; sender/recipient e-mail addresses for Enron). We
// model an element as a 64-bit key. `pair_key` builds a key from a
// (source, destination) pair the way both of the paper's datasets do.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace dds::stream {

using Element = std::uint64_t;

/// Key for a directed (source, destination) pair — the element structure
/// of both paper datasets. The mix decorrelates the key value from the
/// raw pair encoding so keys behave like opaque identifiers.
constexpr Element pair_key(std::uint32_t source, std::uint32_t destination) noexcept {
  return util::mix64((static_cast<std::uint64_t>(source) << 32) |
                     destination);
}

}  // namespace dds::stream
