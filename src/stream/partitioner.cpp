#include "stream/partitioner.h"

#include <stdexcept>

namespace dds::stream {

Distribution parse_distribution(const std::string& name) {
  if (name == "flooding") return Distribution::kFlooding;
  if (name == "random") return Distribution::kRandom;
  if (name == "round-robin" || name == "roundrobin") {
    return Distribution::kRoundRobin;
  }
  if (name == "dominate") return Distribution::kDominate;
  throw std::invalid_argument("unknown distribution: " + name);
}

std::string to_string(Distribution distribution) {
  switch (distribution) {
    case Distribution::kFlooding: return "flooding";
    case Distribution::kRandom: return "random";
    case Distribution::kRoundRobin: return "round-robin";
    case Distribution::kDominate: return "dominate";
  }
  return "?";
}

FloodingPartitioner::FloodingPartitioner(ElementStream& stream,
                                         std::uint32_t num_sites)
    : stream_(stream), num_sites_(num_sites) {
  if (num_sites_ == 0) throw std::invalid_argument("flooding: no sites");
}

std::optional<sim::Arrival> FloodingPartitioner::next() {
  if (!has_current_ || cursor_ == num_sites_) {
    auto e = stream_.next();
    if (!e) return std::nullopt;
    current_ = *e;
    has_current_ = true;
    cursor_ = 0;
    ++slot_;
  }
  return sim::Arrival{slot_, cursor_++, current_};
}

RandomPartitioner::RandomPartitioner(ElementStream& stream,
                                     std::uint32_t num_sites,
                                     std::uint64_t seed)
    : stream_(stream), num_sites_(num_sites), rng_(seed) {
  if (num_sites_ == 0) throw std::invalid_argument("random: no sites");
}

std::optional<sim::Arrival> RandomPartitioner::next() {
  auto e = stream_.next();
  if (!e) return std::nullopt;
  ++slot_;
  return sim::Arrival{
      slot_, static_cast<sim::NodeId>(rng_.next_below(num_sites_)), *e};
}

RoundRobinPartitioner::RoundRobinPartitioner(ElementStream& stream,
                                             std::uint32_t num_sites)
    : stream_(stream), num_sites_(num_sites) {
  if (num_sites_ == 0) throw std::invalid_argument("round-robin: no sites");
}

std::optional<sim::Arrival> RoundRobinPartitioner::next() {
  auto e = stream_.next();
  if (!e) return std::nullopt;
  ++slot_;
  return sim::Arrival{
      slot_, static_cast<sim::NodeId>(slot_ % num_sites_), *e};
}

DominatePartitioner::DominatePartitioner(ElementStream& stream,
                                         std::uint32_t num_sites,
                                         double dominate_rate,
                                         std::uint64_t seed)
    : stream_(stream), num_sites_(num_sites), rng_(seed) {
  if (num_sites_ == 0) throw std::invalid_argument("dominate: no sites");
  if (!(dominate_rate >= 1.0)) {
    throw std::invalid_argument("dominate: rate must be >= 1");
  }
  p_site0_ = dominate_rate /
             (dominate_rate + static_cast<double>(num_sites_ - 1));
}

std::optional<sim::Arrival> DominatePartitioner::next() {
  auto e = stream_.next();
  if (!e) return std::nullopt;
  ++slot_;
  sim::NodeId site = 0;
  if (num_sites_ > 1 && !rng_.next_bernoulli(p_site0_)) {
    site = static_cast<sim::NodeId>(1 + rng_.next_below(num_sites_ - 1));
  }
  return sim::Arrival{slot_, site, *e};
}

SlottedFeeder::SlottedFeeder(ElementStream& stream, std::uint32_t num_sites,
                             std::uint32_t per_slot, std::uint64_t seed)
    : stream_(stream), num_sites_(num_sites), per_slot_(per_slot), rng_(seed) {
  if (num_sites_ == 0) throw std::invalid_argument("slotted: no sites");
  if (per_slot_ == 0) throw std::invalid_argument("slotted: per_slot == 0");
}

std::optional<sim::Arrival> SlottedFeeder::next() {
  auto e = stream_.next();
  if (!e) return std::nullopt;
  if (in_slot_ == per_slot_) {
    in_slot_ = 0;
    ++slot_;
  }
  ++in_slot_;
  return sim::Arrival{
      slot_, static_cast<sim::NodeId>(rng_.next_below(num_sites_)), *e};
}

std::unique_ptr<sim::ArrivalSource> make_partitioner(
    Distribution distribution, ElementStream& stream, std::uint32_t num_sites,
    std::uint64_t seed, double dominate_rate) {
  switch (distribution) {
    case Distribution::kFlooding:
      return std::make_unique<FloodingPartitioner>(stream, num_sites);
    case Distribution::kRandom:
      return std::make_unique<RandomPartitioner>(stream, num_sites, seed);
    case Distribution::kRoundRobin:
      return std::make_unique<RoundRobinPartitioner>(stream, num_sites);
    case Distribution::kDominate:
      return std::make_unique<DominatePartitioner>(stream, num_sites,
                                                   dominate_rate, seed);
  }
  throw std::invalid_argument("bad distribution enum");
}

}  // namespace dds::stream
