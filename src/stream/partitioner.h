// Distribution strategies: how a logical stream is spread over the k
// sites. These are the four methods of Section 5.1/5.2:
//
//   * flooding    — every element is observed by every site;
//   * random      — each element goes to one uniformly random site;
//   * round-robin — element j goes to site j mod k;
//   * dominate    — element goes to site 0 with probability weight
//                   `dominate_rate` alpha against weight 1 for each other
//                   site (P[site 0] = alpha / (alpha + k - 1)).
//
// A partitioner adapts an ElementStream into the simulator's
// ArrivalSource. For infinite-window runs the slot is simply the element
// index (slots carry no semantics there); sliding-window runs use
// SlottedFeeder instead (Section 5.3's input construction).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/runner.h"
#include "stream/generators.h"
#include "util/rng.h"

namespace dds::stream {

enum class Distribution : std::uint8_t {
  kFlooding,
  kRandom,
  kRoundRobin,
  kDominate,
};

Distribution parse_distribution(const std::string& name);
std::string to_string(Distribution distribution);

/// Every element delivered to all k sites (k arrivals per element, same
/// slot).
class FloodingPartitioner final : public sim::ArrivalSource {
 public:
  FloodingPartitioner(ElementStream& stream, std::uint32_t num_sites);
  std::optional<sim::Arrival> next() override;

 private:
  ElementStream& stream_;
  std::uint32_t num_sites_;
  std::uint32_t cursor_ = 0;
  Element current_ = 0;
  bool has_current_ = false;
  sim::Slot slot_ = -1;
};

/// Each element to one uniformly random site.
class RandomPartitioner final : public sim::ArrivalSource {
 public:
  RandomPartitioner(ElementStream& stream, std::uint32_t num_sites,
                    std::uint64_t seed);
  std::optional<sim::Arrival> next() override;

 private:
  ElementStream& stream_;
  std::uint32_t num_sites_;
  sim::Slot slot_ = -1;
  util::Xoshiro256StarStar rng_;
};

/// Element j to site j mod k.
class RoundRobinPartitioner final : public sim::ArrivalSource {
 public:
  RoundRobinPartitioner(ElementStream& stream, std::uint32_t num_sites);
  std::optional<sim::Arrival> next() override;

 private:
  ElementStream& stream_;
  std::uint32_t num_sites_;
  sim::Slot slot_ = -1;
};

/// Site 0 favoured by the dominate rate (Section 5.2's skew experiment).
class DominatePartitioner final : public sim::ArrivalSource {
 public:
  DominatePartitioner(ElementStream& stream, std::uint32_t num_sites,
                      double dominate_rate, std::uint64_t seed);
  std::optional<sim::Arrival> next() override;

 private:
  ElementStream& stream_;
  std::uint32_t num_sites_;
  double p_site0_;
  sim::Slot slot_ = -1;
  util::Xoshiro256StarStar rng_;
};

/// Section 5.3's sliding-window input: each slot carries `per_slot`
/// elements, each assigned to a uniformly random site (a site may receive
/// several elements in one slot).
class SlottedFeeder final : public sim::ArrivalSource {
 public:
  SlottedFeeder(ElementStream& stream, std::uint32_t num_sites,
                std::uint32_t per_slot, std::uint64_t seed);
  std::optional<sim::Arrival> next() override;

 private:
  ElementStream& stream_;
  std::uint32_t num_sites_;
  std::uint32_t per_slot_;
  std::uint32_t in_slot_ = 0;
  sim::Slot slot_ = 0;
  util::Xoshiro256StarStar rng_;
};

/// Factory over the Distribution enum (dominate_rate ignored except for
/// kDominate).
std::unique_ptr<sim::ArrivalSource> make_partitioner(
    Distribution distribution, ElementStream& stream, std::uint32_t num_sites,
    std::uint64_t seed, double dominate_rate = 1.0);

}  // namespace dds::stream
