// Synthetic stand-ins for the paper's two real-world traces.
//
// The paper evaluates on (Table 5.1):
//   * CAIDA OC48 peering-link IP traces — 42,268,510 elements,
//     4,337,768 distinct (src IP, dst IP) pairs;
//   * the Enron e-mail corpus — 1,557,491 elements, 374,330 distinct
//     (sender, recipient) pairs.
// Neither dataset can be redistributed (CAIDA license / corpus size), so
// we substitute Zipf pair-popularity streams calibrated to reproduce each
// trace's total/distinct profile. The sampler's message cost depends only
// on the order in which new distinct elements appear (repeats never send
// messages — Section 3.1), so matching the distinct-arrival profile
// preserves the behaviour the experiments measure. DESIGN.md §3 records
// the substitution; the table5_1 bench prints achieved vs. paper counts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "stream/generators.h"

namespace dds::stream {

enum class Dataset : std::uint8_t { kOc48, kEnron };

Dataset parse_dataset(const std::string& name);
std::string to_string(Dataset dataset);

/// Calibrated parameters of a synthetic trace.
struct TraceSpec {
  std::string name;
  std::uint64_t paper_elements;  ///< Table 5.1 element count
  std::uint64_t paper_distinct;  ///< Table 5.1 distinct count
  std::uint64_t domain;          ///< Zipf domain (possible pairs)
  double alpha;                  ///< Zipf exponent
};

const TraceSpec& trace_spec(Dataset dataset);

/// Builds the synthetic trace. `scale` in (0, 1] shortens the stream to
/// scale * paper_elements (domain is kept, so duplicate density drops
/// slightly at small scales); scale == 1 reproduces paper-scale counts.
std::unique_ptr<ElementStream> make_trace(Dataset dataset, double scale,
                                          std::uint64_t seed);

/// Drains a stream counting total and distinct elements (hash-set based;
/// memory proportional to the distinct count).
struct TraceStats {
  std::uint64_t elements = 0;
  std::uint64_t distinct = 0;
};
TraceStats measure(ElementStream& stream);

}  // namespace dds::stream
