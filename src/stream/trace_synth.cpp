#include "stream/trace_synth.h"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace dds::stream {

Dataset parse_dataset(const std::string& name) {
  if (name == "oc48") return Dataset::kOc48;
  if (name == "enron") return Dataset::kEnron;
  throw std::invalid_argument("unknown dataset: " + name);
}

std::string to_string(Dataset dataset) {
  switch (dataset) {
    case Dataset::kOc48: return "oc48";
    case Dataset::kEnron: return "enron";
  }
  return "?";
}

const TraceSpec& trace_spec(Dataset dataset) {
  // Zipf parameters calibrated empirically (see EXPERIMENTS.md) so that
  // a full-scale run reproduces Table 5.1's distinct counts to within ~1%:
  // measured 4,392,068 (OC48 @ domain 8.0M -> tuned to 7.8M) and
  // 371,208 (Enron @ 2.5M -> tuned to 2.6M) vs the paper's counts below.
  static const TraceSpec oc48{"OC48", 42'268'510ULL, 4'337'768ULL,
                              7'800'000ULL, 1.0};
  static const TraceSpec enron{"Enron", 1'557'491ULL, 374'330ULL,
                               2'600'000ULL, 1.0};
  switch (dataset) {
    case Dataset::kOc48: return oc48;
    case Dataset::kEnron: return enron;
  }
  throw std::invalid_argument("bad dataset enum");
}

std::unique_ptr<ElementStream> make_trace(Dataset dataset, double scale,
                                          std::uint64_t seed) {
  if (!(scale > 0.0) || scale > 1.0) {
    throw std::invalid_argument("make_trace: scale must be in (0, 1]");
  }
  const TraceSpec& spec = trace_spec(dataset);
  const auto n = static_cast<std::uint64_t>(
      std::llround(scale * static_cast<double>(spec.paper_elements)));
  return std::make_unique<ZipfStream>(n, spec.domain, spec.alpha, seed);
}

TraceStats measure(ElementStream& stream) {
  TraceStats stats;
  std::unordered_set<Element> seen;
  while (auto e = stream.next()) {
    ++stats.elements;
    seen.insert(*e);
  }
  stats.distinct = seen.size();
  return stats;
}

}  // namespace dds::stream
