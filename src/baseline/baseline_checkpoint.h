// Checkpoint images for the full-sync coordinator family — the exact
// distributed protocols the chaos suite kills and restores.
//
// These are `checkpoint` / `restore_into` overloads in dds::baseline,
// deliberately named like the core ones: core/checkpoint.h's
// checkpoint_ensemble / restore_ensemble templates call them
// unqualified on `deployment.coordinator(j)`, so argument-dependent
// lookup lands here and the sharded-ensemble machinery (and the
// Supervisor built on it) works for FullSync and bottom-s deployments
// without core/ depending on baseline/.
//
// Layouts (little-endian u64s, sealed with the shared v2 checksum):
//   FullSync ("DDS_FSYN"):
//     [magic][version][num_sites]
//     [has, element, hash, expiry] * num_sites   [checksum]
//   bottom-s pool ("DDS_BSPL"):
//     [magic][version][sample_size][count]
//     [element, hash, expiry] * count            [checksum]
//
// Restore semantics mirror the protocols' order-robustness: a restored
// FullSync per-site entry carries sequence watermark 0 (any live report
// supersedes it), and a restored bottom-s pool is rebuilt through
// SDominanceSet::load_snapshot (insert keeps the freshest expiry, so
// reports racing the restore are harmless).
#pragma once

#include <optional>
#include <vector>

#include "baseline/fullsync_bottom_s.h"
#include "baseline/sliding_fullsync.h"
#include "core/checkpoint.h"

namespace dds::baseline {

using core::CheckpointImage;

/// Captures the per-site minima table of a FullSync coordinator.
CheckpointImage checkpoint(const FullSyncSlidingCoordinator& coordinator);

/// Parsed FullSync image — one optional entry per site; nullopt if the
/// image is malformed.
std::optional<std::vector<std::optional<treap::Candidate>>>
parse_fullsync_checkpoint(const CheckpointImage& image);

/// Writes a FullSync image into an existing coordinator. Returns false
/// — leaving the coordinator untouched — if the image is malformed or
/// its site count differs.
bool restore_into(FullSyncSlidingCoordinator& coordinator,
                  const CheckpointImage& image);

/// Captures the pooled candidate set of a bottom-s coordinator.
CheckpointImage checkpoint(const BottomSSlidingCoordinator& coordinator);

/// Parsed bottom-s pool image; nullopt if malformed.
struct BottomSCheckpointContents {
  std::size_t sample_size = 0;
  std::vector<treap::Candidate> items;
};
std::optional<BottomSCheckpointContents> parse_bottom_s_checkpoint(
    const CheckpointImage& image);

/// Writes a bottom-s pool image into an existing coordinator. Returns
/// false — leaving the coordinator untouched — if the image is
/// malformed or its sample size differs.
bool restore_into(BottomSSlidingCoordinator& coordinator,
                  const CheckpointImage& image);

}  // namespace dds::baseline
