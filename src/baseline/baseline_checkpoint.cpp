#include "baseline/baseline_checkpoint.h"

namespace dds::baseline {

namespace ckpt = core::ckpt;

CheckpointImage checkpoint(const FullSyncSlidingCoordinator& coordinator) {
  CheckpointImage out;
  const std::uint32_t n = coordinator.num_sites();
  out.reserve(8 * (3 + 4 * static_cast<std::size_t>(n) + 1));
  ckpt::put_u64(out, ckpt::kFullSyncMagic);
  ckpt::put_u64(out, ckpt::kVersion);
  ckpt::put_u64(out, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto entry = coordinator.site_entry(i);
    ckpt::put_u64(out, entry ? 1 : 0);
    ckpt::put_u64(out, entry ? entry->element : 0);
    ckpt::put_u64(out, entry ? entry->hash : 0);
    ckpt::put_u64(out, entry ? static_cast<std::uint64_t>(entry->expiry) : 0);
  }
  ckpt::seal(out);
  return out;
}

std::optional<std::vector<std::optional<treap::Candidate>>>
parse_fullsync_checkpoint(const CheckpointImage& image) {
  std::size_t pos = 0;
  const auto magic = ckpt::get_u64(image, pos);
  const auto version = ckpt::get_u64(image, pos);
  if (!magic || *magic != ckpt::kFullSyncMagic) return std::nullopt;
  if (!version) return std::nullopt;
  const auto end = ckpt::body_end(image, *version);
  if (!end) return std::nullopt;
  // Size-bound before the exact-size formula (overflow-proof on a
  // corrupted count), then exact size.
  const auto sites = ckpt::get_u64(image, pos);
  if (!sites || *sites > image.size() / 32 ||
      *end != 8 * (3 + 4 * *sites)) {
    return std::nullopt;
  }
  std::vector<std::optional<treap::Candidate>> out;
  out.reserve(static_cast<std::size_t>(*sites));
  for (std::uint64_t i = 0; i < *sites; ++i) {
    const auto has = ckpt::get_u64(image, pos);
    const auto element = ckpt::get_u64(image, pos);
    const auto hash = ckpt::get_u64(image, pos);
    const auto expiry = ckpt::get_u64(image, pos);
    if (!has || !element || !hash || !expiry || *has > 1) return std::nullopt;
    if (*has == 1) {
      out.push_back(treap::Candidate{*element, *hash,
                                     static_cast<sim::Slot>(*expiry)});
    } else {
      out.push_back(std::nullopt);
    }
  }
  if (pos != *end) return std::nullopt;
  return out;
}

bool restore_into(FullSyncSlidingCoordinator& coordinator,
                  const CheckpointImage& image) {
  const auto contents = parse_fullsync_checkpoint(image);
  if (!contents || contents->size() != coordinator.num_sites()) return false;
  for (std::uint32_t i = 0; i < coordinator.num_sites(); ++i) {
    coordinator.restore_site(i, (*contents)[i]);
  }
  return true;
}

CheckpointImage checkpoint(const BottomSSlidingCoordinator& coordinator) {
  const auto items = coordinator.pool().snapshot();
  CheckpointImage out;
  out.reserve(8 * (4 + 3 * items.size() + 1));
  ckpt::put_u64(out, ckpt::kBottomSMagic);
  ckpt::put_u64(out, ckpt::kVersion);
  ckpt::put_u64(out, coordinator.pool().sample_size());
  ckpt::put_u64(out, items.size());
  for (const auto& c : items) {
    ckpt::put_u64(out, c.element);
    ckpt::put_u64(out, c.hash);
    ckpt::put_u64(out, static_cast<std::uint64_t>(c.expiry));
  }
  ckpt::seal(out);
  return out;
}

std::optional<BottomSCheckpointContents> parse_bottom_s_checkpoint(
    const CheckpointImage& image) {
  std::size_t pos = 0;
  const auto magic = ckpt::get_u64(image, pos);
  const auto version = ckpt::get_u64(image, pos);
  if (!magic || *magic != ckpt::kBottomSMagic) return std::nullopt;
  if (!version) return std::nullopt;
  const auto end = ckpt::body_end(image, *version);
  if (!end) return std::nullopt;
  const auto s = ckpt::get_u64(image, pos);
  const auto count = ckpt::get_u64(image, pos);
  if (!s || *s == 0 || !count || *count > image.size() / 24 ||
      *end != 8 * (4 + 3 * *count)) {
    return std::nullopt;
  }
  BottomSCheckpointContents contents;
  contents.sample_size = static_cast<std::size_t>(*s);
  contents.items.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto element = ckpt::get_u64(image, pos);
    const auto hash = ckpt::get_u64(image, pos);
    const auto expiry = ckpt::get_u64(image, pos);
    if (!element || !hash || !expiry) return std::nullopt;
    contents.items.push_back(
        treap::Candidate{*element, *hash, static_cast<sim::Slot>(*expiry)});
  }
  if (pos != *end) return std::nullopt;
  return contents;
}

bool restore_into(BottomSSlidingCoordinator& coordinator,
                  const CheckpointImage& image) {
  const auto contents = parse_bottom_s_checkpoint(image);
  if (!contents || contents->sample_size != coordinator.pool().sample_size()) {
    return false;
  }
  coordinator.restore_pool(contents->items);
  return true;
}

}  // namespace dds::baseline
