#include "baseline/fullsync_bottom_s.h"

#include <algorithm>

#include "util/rng.h"

namespace dds::baseline {

BottomSSlidingSite::BottomSSlidingSite(sim::NodeId id, sim::NodeId coordinator,
                                       std::size_t sample_size,
                                       sim::Slot window,
                                       hash::HashFunction hash_fn,
                                       std::uint64_t seed)
    : id_(id),
      coordinator_(coordinator),
      sampler_(sample_size, window, std::move(hash_fn), seed) {}

void BottomSSlidingSite::on_slot_begin(sim::Slot t, net::Transport& bus) {
  sync(t, bus);
}

void BottomSSlidingSite::on_element(stream::Element element, sim::Slot t,
                                    net::Transport& bus) {
  sampler_.observe(element, t);
  sync(t, bus);
}

void BottomSSlidingSite::on_element_batch(
    std::span<const std::uint64_t> elements, sim::Slot t, net::Transport& bus) {
  const std::size_t n = elements.size();
  if (hash_scratch_.size() < n) hash_scratch_.resize(n);
  sampler_.hash_fn().hash_batch(elements.data(), n, hash_scratch_.data());
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) sampler_.candidates().prefetch(elements[i + 1]);
    // observe_hashed keeps the per-element expire so the sync() below
    // sees the exact same candidate set as element-at-a-time ingest.
    sampler_.observe_hashed(elements[i], hash_scratch_[i], t);
    sync(t, bus);
    bus.drain();  // per-element drain boundary (batch contract)
  }
}

void BottomSSlidingSite::resync(net::Transport& bus) {
  shipped_.clear();
  sync(bus.now(), bus);
}

void BottomSSlidingSite::restore_candidates(
    const std::vector<treap::Candidate>& items) {
  sampler_.load_candidates(items);
  shipped_.clear();
}

void BottomSSlidingSite::sync(sim::Slot now, net::Transport& bus) {
  sampler_.sample_into(now, bottom_);
  // Drop shipped-records for tuples that left the local bottom-s; the
  // coordinator's copies age out on their own. `still_` and `bottom_`
  // are reused scratch — sync runs per arrival, so it must not
  // allocate in steady state (clear/swap keep both maps' buckets).
  still_.clear();
  for (const auto& c : bottom_) {
    auto it = shipped_.find(c.element);
    if (it == shipped_.end() || it->second != c.expiry) {
      sim::Message msg;
      msg.from = id_;
      msg.to = coordinator_;
      msg.type = sim::MsgType::kSlidingReport;
      msg.a = c.element;
      msg.b = c.hash;
      msg.c = static_cast<std::uint64_t>(c.expiry);
      bus.send(msg);
    }
    still_.emplace(c.element, c.expiry);
  }
  shipped_.swap(still_);
}

BottomSSlidingCoordinator::BottomSSlidingCoordinator(sim::NodeId id,
                                                     std::size_t sample_size)
    : pool_(sample_size, util::derive_seed(0x62735363ULL /*"bsSc"*/, id)) {}

void BottomSSlidingCoordinator::on_message(const sim::Message& msg,
                                           net::Transport& bus) {
  if (msg.type != sim::MsgType::kSlidingReport) return;
  // Expired tuples leave first so the dominance sweep never walks them.
  pool_.expire(bus.now());
  // insert() keeps the freshest expiry for a re-reported element and
  // drops tuples (incoming or stored) once s smaller-hash, later-expiry
  // reports dominate them — they can never re-enter the bottom-s.
  pool_.insert(msg.a, msg.b, static_cast<sim::Slot>(msg.c));
}

std::vector<treap::Candidate> BottomSSlidingCoordinator::sample(
    sim::Slot now) const {
  std::vector<treap::Candidate> out;
  sample_into(now, out);
  return out;
}

void BottomSSlidingCoordinator::sample_into(
    sim::Slot now, std::vector<treap::Candidate>& out) const {
  pool_.expire(now);
  pool_.bottom_s_into(out);
}

}  // namespace dds::baseline
