#include "baseline/fullsync_bottom_s.h"

#include <algorithm>

namespace dds::baseline {

BottomSSlidingSite::BottomSSlidingSite(sim::NodeId id, sim::NodeId coordinator,
                                       std::size_t sample_size,
                                       sim::Slot window,
                                       hash::HashFunction hash_fn,
                                       std::uint64_t seed)
    : id_(id),
      coordinator_(coordinator),
      sampler_(sample_size, window, std::move(hash_fn), seed) {}

void BottomSSlidingSite::on_slot_begin(sim::Slot t, net::Transport& bus) {
  sync(t, bus);
}

void BottomSSlidingSite::on_element(stream::Element element, sim::Slot t,
                                    net::Transport& bus) {
  sampler_.observe(element, t);
  sync(t, bus);
}

void BottomSSlidingSite::sync(sim::Slot now, net::Transport& bus) {
  sampler_.sample_into(now, bottom_);
  // Drop shipped-records for tuples that left the local bottom-s; the
  // coordinator's copies age out on their own. `still_` and `bottom_`
  // are reused scratch — sync runs per arrival, so it must not
  // allocate in steady state (clear/swap keep both maps' buckets).
  still_.clear();
  for (const auto& c : bottom_) {
    auto it = shipped_.find(c.element);
    if (it == shipped_.end() || it->second != c.expiry) {
      sim::Message msg;
      msg.from = id_;
      msg.to = coordinator_;
      msg.type = sim::MsgType::kSlidingReport;
      msg.a = c.element;
      msg.b = c.hash;
      msg.c = static_cast<std::uint64_t>(c.expiry);
      bus.send(msg);
    }
    still_.emplace(c.element, c.expiry);
  }
  shipped_.swap(still_);
}

BottomSSlidingCoordinator::BottomSSlidingCoordinator(sim::NodeId /*id*/,
                                                     std::size_t sample_size)
    : sample_size_(sample_size) {}

void BottomSSlidingCoordinator::on_message(const sim::Message& msg,
                                           net::Transport& bus) {
  if (msg.type != sim::MsgType::kSlidingReport) return;
  const treap::Candidate incoming{msg.a, msg.b,
                                  static_cast<sim::Slot>(msg.c)};
  auto [it, inserted] = pool_.emplace(msg.a, incoming);
  if (!inserted && it->second.expiry < incoming.expiry) {
    it->second = incoming;
  }
  // Opportunistic garbage collection keeps the pool near k*s entries.
  const sim::Slot now = bus.now();
  if (pool_.size() > 4 * sample_size_ + 64) {
    std::erase_if(pool_, [now](const auto& kv) {
      return kv.second.expiry <= now;
    });
  }
}

std::vector<treap::Candidate> BottomSSlidingCoordinator::sample(
    sim::Slot now) const {
  std::vector<treap::Candidate> live;
  live.reserve(pool_.size());
  for (const auto& [element, c] : pool_) {
    if (c.expiry > now) live.push_back(c);
  }
  std::sort(live.begin(), live.end(),
            [](const treap::Candidate& a, const treap::Candidate& b) {
              return a.hash < b.hash;
            });
  if (live.size() > sample_size_) live.resize(sample_size_);
  return live;
}

}  // namespace dds::baseline
