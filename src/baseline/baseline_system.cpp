#include "baseline/baseline_system.h"

#include <algorithm>

#include "net/factory.h"
#include "util/rng.h"

namespace dds::baseline {

namespace {

template <typename SiteT>
std::vector<sim::StreamNode*> as_stream_nodes(
    const std::vector<std::unique_ptr<SiteT>>& sites) {
  std::vector<sim::StreamNode*> out;
  out.reserve(sites.size());
  for (const auto& site : sites) out.push_back(site.get());
  return out;
}

}  // namespace

BroadcastSystem::BroadcastSystem(const core::SystemConfig& config,
                                 bool suppress_duplicates)
    : transport_(net::make_transport(config.num_sites, config.network)),
      // Same seed derivation as InfiniteSystem so head-to-head runs use
      // the identical hash function.
      hash_fn_(config.hash_kind, util::derive_seed(config.seed, 0xA5)) {
  coordinator_ = std::make_unique<BroadcastCoordinator>(
      transport_->coordinator_id(), config.sample_size, config.num_sites);
  transport_->attach(transport_->coordinator_id(), coordinator_.get());
  sites_.reserve(config.num_sites);
  for (std::uint32_t i = 0; i < config.num_sites; ++i) {
    sites_.push_back(std::make_unique<BroadcastSite>(
        i, transport_->coordinator_id(), hash_fn_, suppress_duplicates));
    transport_->attach(i, sites_.back().get());
  }
  runner_ = std::make_unique<sim::Runner>(*transport_, as_stream_nodes(sites_),
                                          /*invoke_slot_begin=*/false);
}

CentralizedSystem::CentralizedSystem(const core::SystemConfig& config)
    : transport_(net::make_transport(config.num_sites, config.network)),
      hash_fn_(config.hash_kind, util::derive_seed(config.seed, 0xA5)) {
  coordinator_ = std::make_unique<CentralizedCoordinator>(
      transport_->coordinator_id(), config.sample_size);
  transport_->attach(transport_->coordinator_id(), coordinator_.get());
  sites_.reserve(config.num_sites);
  for (std::uint32_t i = 0; i < config.num_sites; ++i) {
    sites_.push_back(std::make_unique<ForwardingSite>(
        i, transport_->coordinator_id(), hash_fn_));
    transport_->attach(i, sites_.back().get());
  }
  runner_ = std::make_unique<sim::Runner>(*transport_, as_stream_nodes(sites_),
                                          /*invoke_slot_begin=*/false);
}

DrsSystem::DrsSystem(const core::SystemConfig& config)
    : transport_(net::make_transport(config.num_sites, config.network)) {
  coordinator_ = std::make_unique<DrsCoordinator>(transport_->coordinator_id(),
                                                  config.sample_size);
  transport_->attach(transport_->coordinator_id(), coordinator_.get());
  sites_.reserve(config.num_sites);
  for (std::uint32_t i = 0; i < config.num_sites; ++i) {
    sites_.push_back(std::make_unique<DrsSite>(
        i, transport_->coordinator_id(), util::derive_seed(config.seed, 0xE00 + i)));
    transport_->attach(i, sites_.back().get());
  }
  runner_ = std::make_unique<sim::Runner>(*transport_, as_stream_nodes(sites_),
                                          /*invoke_slot_begin=*/false);
}

FullSyncSlidingSystem::FullSyncSlidingSystem(
    const core::SlidingSystemConfig& config)
    : transport_(net::make_transport(config.num_sites, config.network)),
      // Match SlidingSystem's hash: family member 0 with the same seed
      // derivation, so the two protocols sample identical elements.
      hash_fn_(hash::HashFamily(config.hash_kind,
                                util::derive_seed(config.seed, 0xC7))
                   .at(0)) {
  coordinator_ = std::make_unique<FullSyncSlidingCoordinator>(
      transport_->coordinator_id(), config.num_sites);
  transport_->attach(transport_->coordinator_id(), coordinator_.get());
  sites_.reserve(config.num_sites);
  for (std::uint32_t i = 0; i < config.num_sites; ++i) {
    sites_.push_back(std::make_unique<FullSyncSlidingSite>(
        i, transport_->coordinator_id(), config.window, hash_fn_,
        util::derive_seed(config.seed, 0xF00 + i)));
    transport_->attach(i, sites_.back().get());
  }
  runner_ = std::make_unique<sim::Runner>(*transport_, as_stream_nodes(sites_),
                                          /*invoke_slot_begin=*/true);
}

std::size_t FullSyncSlidingSystem::total_site_state() const noexcept {
  std::size_t total = 0;
  for (const auto& site : sites_) total += site->state_size();
  return total;
}

std::size_t FullSyncSlidingSystem::max_site_state() const noexcept {
  std::size_t mx = 0;
  for (const auto& site : sites_) mx = std::max(mx, site->state_size());
  return mx;
}

BottomSSlidingSystem::BottomSSlidingSystem(
    const core::SlidingSystemConfig& config)
    : transport_(net::make_transport(config.num_sites, config.network)),
      // Family member 0 with SlidingSystem's derivation: head-to-head
      // runs against the parallel-copies scheme share instance 0's hash.
      hash_fn_(hash::HashFamily(config.hash_kind,
                                util::derive_seed(config.seed, 0xC7))
                   .at(0)) {
  coordinator_ = std::make_unique<BottomSSlidingCoordinator>(
      transport_->coordinator_id(), config.sample_size);
  transport_->attach(transport_->coordinator_id(), coordinator_.get());
  sites_.reserve(config.num_sites);
  for (std::uint32_t i = 0; i < config.num_sites; ++i) {
    sites_.push_back(std::make_unique<BottomSSlidingSite>(
        i, transport_->coordinator_id(), config.sample_size, config.window,
        hash_fn_));
    transport_->attach(i, sites_.back().get());
  }
  runner_ = std::make_unique<sim::Runner>(*transport_, as_stream_nodes(sites_),
                                          /*invoke_slot_begin=*/true);
}

std::size_t BottomSSlidingSystem::total_site_state() const noexcept {
  std::size_t total = 0;
  for (const auto& site : sites_) total += site->state_size();
  return total;
}

std::size_t BottomSSlidingSystem::max_site_state() const noexcept {
  std::size_t mx = 0;
  for (const auto& site : sites_) mx = std::max(mx, site->state_size());
  return mx;
}

}  // namespace dds::baseline
