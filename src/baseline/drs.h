// Distributed random (frequency-weighted) sampling — the DRS contrast of
// Chapter 1's discussion.
//
// DRS samples uniformly from all n OCCURRENCES (so heavy elements are
// likelier), whereas DDS samples from the d distinct IDENTITIES. We
// implement DRS in the same min-tag style as the DDS protocol so the two
// are directly comparable: every arrival draws a FRESH random tag (not a
// hash of its identity); the coordinator keeps the elements bearing the
// s smallest tags; sites keep a lazy view of the s-th smallest tag.
//
// The key consequence the abl2 bench demonstrates: a repeated element
// re-arrives with a new tag, so duplicates still cost messages for DRS
// but never for DDS; conversely the probability of selection decays as
// s/n (occurrences) for DRS versus s/d (distinct) for DDS. Note this is
// the min-tag analogue, not the round-based protocol of Cormode et al.
// (2012) whose k log(n/s)/log(k/s) bound is lower for s << k; we state
// the distinction in DESIGN.md and compare growth shapes, not constants.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "core/bottom_s_sample.h"
#include "net/transport.h"
#include "sim/node.h"
#include "stream/element.h"
#include "util/rng.h"

namespace dds::baseline {

class DrsSite final : public sim::StreamNode {
 public:
  DrsSite(sim::NodeId id, sim::NodeId coordinator, std::uint64_t seed);

  void on_element(stream::Element element, sim::Slot t, net::Transport& bus) override;
  void on_message(const sim::Message& msg, net::Transport& bus) override;
  std::size_t state_size() const noexcept override { return 1; }

  /// Speculation snapshots capture the RNG state words alongside the
  /// threshold view: a rolled-back replay must draw the SAME fresh tags
  /// it drew the first time, or the re-executed trace diverges.
  bool speculation_capable() const noexcept override { return true; }
  void save_speculation_state(std::vector<std::uint8_t>& out) const override;
  void restore_speculation_state(
      std::span<const std::uint8_t> image) override;

 private:
  sim::NodeId id_;
  sim::NodeId coordinator_;
  util::Xoshiro256StarStar rng_;
  std::uint64_t u_local_ = ~0ULL;
};

class DrsCoordinator final : public sim::Node {
 public:
  DrsCoordinator(sim::NodeId id, std::size_t sample_size);

  void on_message(const sim::Message& msg, net::Transport& bus) override;
  std::size_t state_size() const noexcept override { return by_tag_.size(); }

  /// Uniform random sample of the multiset of occurrences; element
  /// values may repeat if the same element was sampled through two
  /// occurrences (that is with-replacement-like by design of DRS).
  std::vector<stream::Element> sample() const;
  std::size_t size() const noexcept { return by_tag_.size(); }
  std::uint64_t threshold() const noexcept { return u_; }

 private:
  sim::NodeId id_;
  std::size_t capacity_;
  /// (tag, element) pairs with the s smallest tags; tags are unique
  /// 64-bit randoms w.h.p., so a std::set suffices.
  std::set<std::pair<std::uint64_t, stream::Element>> by_tag_;
  std::uint64_t u_ = ~0ULL;
};

}  // namespace dds::baseline
