#include "baseline/drs.h"

#include "util/bytes.h"

namespace dds::baseline {

DrsSite::DrsSite(sim::NodeId id, sim::NodeId coordinator, std::uint64_t seed)
    : id_(id), coordinator_(coordinator), rng_(seed) {}

void DrsSite::on_element(stream::Element element, sim::Slot /*t*/,
                         net::Transport& bus) {
  // Fresh tag per OCCURRENCE — the defining difference from DDS, whose
  // "tag" is h(element) and therefore identical across repeats.
  const std::uint64_t tag = rng_.next();
  if (tag < u_local_) {
    sim::Message msg;
    msg.from = id_;
    msg.to = coordinator_;
    msg.type = sim::MsgType::kDrsReport;
    msg.a = element;
    msg.b = tag;
    bus.send(msg);
  }
}

void DrsSite::on_message(const sim::Message& msg, net::Transport& /*bus*/) {
  if (msg.type == sim::MsgType::kDrsReply) u_local_ = msg.b;
}

void DrsSite::save_speculation_state(std::vector<std::uint8_t>& out) const {
  for (const std::uint64_t w : rng_.state()) util::put_u64(out, w);
  util::put_u64(out, u_local_);
}

void DrsSite::restore_speculation_state(std::span<const std::uint8_t> image) {
  std::size_t pos = 0;
  std::array<std::uint64_t, 4> words{};
  for (auto& w : words) w = util::get_u64(image, pos);
  rng_.set_state(words);
  u_local_ = util::get_u64(image, pos);
}

DrsCoordinator::DrsCoordinator(sim::NodeId id, std::size_t sample_size)
    : id_(id), capacity_(sample_size) {}

void DrsCoordinator::on_message(const sim::Message& msg, net::Transport& bus) {
  if (msg.type != sim::MsgType::kDrsReport) return;
  if (msg.b < u_) {
    by_tag_.emplace(msg.b, msg.a);
    if (by_tag_.size() > capacity_) {
      by_tag_.erase(std::prev(by_tag_.end()));
      u_ = std::prev(by_tag_.end())->first;
    }
  }
  sim::Message reply;
  reply.from = id_;
  reply.to = msg.from;
  reply.type = sim::MsgType::kDrsReply;
  reply.b = u_;
  bus.send(reply);
}

std::vector<stream::Element> DrsCoordinator::sample() const {
  std::vector<stream::Element> out;
  out.reserve(by_tag_.size());
  for (const auto& [tag, element] : by_tag_) out.push_back(element);
  return out;
}

}  // namespace dds::baseline
