#include "baseline/centralized.h"

namespace dds::baseline {

ForwardingSite::ForwardingSite(sim::NodeId id, sim::NodeId coordinator,
                               hash::HashFunction hash_fn)
    : id_(id), coordinator_(coordinator), hash_fn_(std::move(hash_fn)) {}

void ForwardingSite::on_element(stream::Element element, sim::Slot /*t*/,
                                net::Transport& bus) {
  sim::Message msg;
  msg.from = id_;
  msg.to = coordinator_;
  msg.type = sim::MsgType::kReportElement;
  msg.a = element;
  msg.b = hash_fn_(element);
  bus.send(msg);
}

CentralizedCoordinator::CentralizedCoordinator(sim::NodeId /*id*/,
                                               std::size_t sample_size)
    : sample_(sample_size) {}

void CentralizedCoordinator::on_message(const sim::Message& msg,
                                        net::Transport& /*bus*/) {
  if (msg.type != sim::MsgType::kReportElement) return;
  sample_.offer(msg.a, msg.b);
}

}  // namespace dds::baseline
