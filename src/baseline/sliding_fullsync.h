// Sliding-window "full sync" baseline — the no-feedback alternative the
// paper sketches in Section 4.1's intuition paragraph:
//
//   "Each site i, at all times, keeps track of the element with the
//    smallest hash value from D_i(t,w). Whenever this changes, the
//    coordinator is informed of the new distinct sample from D_i(t,w)."
//
// The coordinator stores every site's current local minimum (O(k) state)
// and answers queries with the global minimum among the valid ones. No
// replies flow back, so the coordinator's answer is EXACT at every slot
// (unlike the lazy protocol's transient post-expiry regime) — making this
// both the message-cost comparator for the sliding ablation and the live
// distributed oracle in tests. Its weakness is message volume: every
// local-minimum change is shipped, even when the site could never beat
// the global minimum.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hash/hash_function.h"
#include "net/transport.h"
#include "sim/node.h"
#include "stream/element.h"
#include "treap/dominance_set.h"

namespace dds::baseline {

class FullSyncSlidingSite final : public sim::StreamNode {
 public:
  FullSyncSlidingSite(sim::NodeId id, sim::NodeId coordinator,
                      sim::Slot window, hash::HashFunction hash_fn,
                      std::uint64_t seed, treap::HybridConfig substrate = {});

  void on_slot_begin(sim::Slot t, net::Transport& bus) override;
  void on_element(stream::Element element, sim::Slot t, net::Transport& bus) override;
  void on_message(const sim::Message& /*msg*/, net::Transport& /*bus*/) override {}

  std::size_t state_size() const noexcept override {
    return candidates_.size();
  }

 private:
  /// Ships the local minimum if it changed since the last report. A
  /// cleared site (no candidates) reports the kHashMax sentinel once.
  void report_if_changed(net::Transport& bus);

  sim::NodeId id_;
  sim::NodeId coordinator_;
  sim::Slot window_;
  hash::HashFunction hash_fn_;
  treap::DominanceSet candidates_;
  bool reported_valid_ = false;
  treap::Candidate last_reported_{};
};

class FullSyncSlidingCoordinator final : public sim::Node {
 public:
  FullSyncSlidingCoordinator(sim::NodeId id, std::uint32_t num_sites);

  void on_message(const sim::Message& msg, net::Transport& bus) override;
  std::size_t state_size() const noexcept override;

  /// Exact window sample at slot `now`: the minimum-hash element among
  /// the sites' current minima, or nullopt for an empty window.
  std::optional<treap::Candidate> sample(sim::Slot now) const;

 private:
  struct PerSite {
    bool valid = false;
    treap::Candidate candidate{};
  };
  std::vector<PerSite> per_site_;
};

}  // namespace dds::baseline
