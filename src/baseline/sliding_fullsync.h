// Sliding-window "full sync" baseline — the no-feedback alternative the
// paper sketches in Section 4.1's intuition paragraph:
//
//   "Each site i, at all times, keeps track of the element with the
//    smallest hash value from D_i(t,w). Whenever this changes, the
//    coordinator is informed of the new distinct sample from D_i(t,w)."
//
// The coordinator stores every site's current local minimum (O(k) state)
// and answers queries with the global minimum among the valid ones. No
// replies flow back, so the coordinator's answer is EXACT at every slot
// (unlike the lazy protocol's transient post-expiry regime) — making this
// both the message-cost comparator for the sliding ablation and the live
// distributed oracle in tests. Its weakness is message volume: every
// local-minimum change is shipped, even when the site could never beat
// the global minimum.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "hash/hash_function.h"
#include "net/transport.h"
#include "sim/node.h"
#include "stream/element.h"
#include "treap/dominance_set.h"

namespace dds::baseline {

class FullSyncSlidingSite final : public sim::StreamNode {
 public:
  FullSyncSlidingSite(sim::NodeId id, sim::NodeId coordinator,
                      sim::Slot window, hash::HashFunction hash_fn,
                      std::uint64_t seed, treap::HybridConfig substrate = {});

  void on_slot_begin(sim::Slot t, net::Transport& bus) override;
  void on_element(stream::Element element, sim::Slot t, net::Transport& bus) override;
  void on_element_batch(std::span<const std::uint64_t> elements, sim::Slot t,
                        net::Transport& bus) override;
  void on_message(const sim::Message& /*msg*/, net::Transport& /*bus*/) override {}

  std::size_t state_size() const noexcept override {
    return candidates_.size();
  }

  /// Unconditionally re-ships the current local minimum (or the empty
  /// sentinel) — the post-failover resynchronization step: after the
  /// coordinator restores from a checkpoint (or from nothing), one
  /// resync round from every site rebuilds its per-site table exactly.
  void resync(net::Transport& bus);

  /// Candidate-set image for lossless site failover (core/checkpoint.h).
  std::vector<treap::Candidate> snapshot_candidates() const {
    return candidates_.snapshot();
  }
  /// Rebuilds the candidate set from a snapshot_candidates() image and
  /// clears the report memo, so the next report is unconditional.
  void restore_candidates(const std::vector<treap::Candidate>& items);
  /// Adopts one tuple with an arbitrary expiry — the elastic-resize
  /// migration path routes tuples from old shard copies through here.
  void absorb(const treap::Candidate& c) {
    candidates_.insert(c.element, c.hash, c.expiry);
  }

 private:
  /// Ships the local minimum if it changed since the last report. A
  /// cleared site (no candidates) reports the kHashMax sentinel once.
  void report_if_changed(net::Transport& bus);
  /// Ships the current minimum (or sentinel) unconditionally.
  void report(net::Transport& bus);

  sim::NodeId id_;
  sim::NodeId coordinator_;
  sim::Slot window_;
  hash::HashFunction hash_fn_;
  treap::DominanceSet candidates_;
  std::vector<std::uint64_t> hash_scratch_;  ///< batched-hash buffer
  bool reported_valid_ = false;
  treap::Candidate last_reported_{};
  /// Per-site report sequence number, carried in Message::instance (the
  /// field is otherwise unused by this single-instance protocol). The
  /// coordinator keeps only the HIGHEST-seq report per site, which makes
  /// it order-robust: a dropped-and-retransmitted report that lands
  /// after a newer one can no longer roll the per-site entry back — the
  /// property the chaos suite's lossy/jittery wires rely on.
  std::uint32_t next_seq_ = 1;
};

class FullSyncSlidingCoordinator final : public sim::Node {
 public:
  FullSyncSlidingCoordinator(sim::NodeId id, std::uint32_t num_sites);

  void on_message(const sim::Message& msg, net::Transport& bus) override;
  std::size_t state_size() const noexcept override;

  /// Exact window sample at slot `now`: the minimum-hash element among
  /// the sites' current minima, or nullopt for an empty window.
  std::optional<treap::Candidate> sample(sim::Slot now) const;

  // ---- checkpoint / recovery hooks (core/checkpoint.h) --------------
  std::uint32_t num_sites() const noexcept {
    return static_cast<std::uint32_t>(per_site_.size());
  }
  /// Site i's current entry, or nullopt when the site reported empty.
  std::optional<treap::Candidate> site_entry(std::uint32_t i) const {
    if (i >= per_site_.size() || !per_site_[i].valid) return std::nullopt;
    return per_site_[i].candidate;
  }
  /// Overwrites site i's entry from a checkpoint image. The restored
  /// sequence watermark is 0, so any live report supersedes it.
  void restore_site(std::uint32_t i, const std::optional<treap::Candidate>& c);
  /// Forgets every per-site entry (a respawned-empty coordinator).
  void clear();

 private:
  struct PerSite {
    bool valid = false;
    treap::Candidate candidate{};
    /// Highest Message::instance seen from this site; older (reordered
    /// or retransmitted-late) reports are ignored.
    std::uint32_t last_seq = 0;
  };
  std::vector<PerSite> per_site_;
};

}  // namespace dds::baseline
