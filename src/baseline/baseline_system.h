// Deployment facades for the baseline protocols, mirroring
// core/system.h so benches can swap algorithms behind one shape.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baseline/broadcast.h"
#include "baseline/centralized.h"
#include "baseline/drs.h"
#include "baseline/fullsync_bottom_s.h"
#include "baseline/sliding_fullsync.h"
#include "core/system.h"
#include "sim/runner.h"

namespace dds::baseline {

/// Algorithm Broadcast deployment (Section 5.2 comparison).
class BroadcastSystem {
 public:
  explicit BroadcastSystem(const core::SystemConfig& config,
                           bool suppress_duplicates = false);

  net::Transport& bus() noexcept { return *transport_; }
  sim::Runner& runner() noexcept { return *runner_; }
  const BroadcastCoordinator& coordinator() const noexcept {
    return *coordinator_;
  }
  std::uint64_t run(sim::ArrivalSource& source) { return runner_->run(source); }

 private:
  std::unique_ptr<net::Transport> transport_;
  hash::HashFunction hash_fn_;
  std::vector<std::unique_ptr<BroadcastSite>> sites_;
  std::unique_ptr<BroadcastCoordinator> coordinator_;
  std::unique_ptr<sim::Runner> runner_;
};

/// Ship-everything deployment.
class CentralizedSystem {
 public:
  explicit CentralizedSystem(const core::SystemConfig& config);

  net::Transport& bus() noexcept { return *transport_; }
  sim::Runner& runner() noexcept { return *runner_; }
  const CentralizedCoordinator& coordinator() const noexcept {
    return *coordinator_;
  }
  std::uint64_t run(sim::ArrivalSource& source) { return runner_->run(source); }

 private:
  std::unique_ptr<net::Transport> transport_;
  hash::HashFunction hash_fn_;
  std::vector<std::unique_ptr<ForwardingSite>> sites_;
  std::unique_ptr<CentralizedCoordinator> coordinator_;
  std::unique_ptr<sim::Runner> runner_;
};

/// Distributed random (frequency-weighted) sampling deployment.
class DrsSystem {
 public:
  explicit DrsSystem(const core::SystemConfig& config);

  net::Transport& bus() noexcept { return *transport_; }
  sim::Runner& runner() noexcept { return *runner_; }
  const DrsCoordinator& coordinator() const noexcept { return *coordinator_; }
  std::uint64_t run(sim::ArrivalSource& source) { return runner_->run(source); }

 private:
  std::unique_ptr<net::Transport> transport_;
  std::vector<std::unique_ptr<DrsSite>> sites_;
  std::unique_ptr<DrsCoordinator> coordinator_;
  std::unique_ptr<sim::Runner> runner_;
};

/// Full-sync sliding-window deployment (exact; message-heavy).
class FullSyncSlidingSystem {
 public:
  explicit FullSyncSlidingSystem(const core::SlidingSystemConfig& config);

  net::Transport& bus() noexcept { return *transport_; }
  sim::Runner& runner() noexcept { return *runner_; }
  const FullSyncSlidingCoordinator& coordinator() const noexcept {
    return *coordinator_;
  }
  std::uint64_t run(sim::ArrivalSource& source) { return runner_->run(source); }

  std::size_t total_site_state() const noexcept;
  std::size_t max_site_state() const noexcept;

 private:
  std::unique_ptr<net::Transport> transport_;
  hash::HashFunction hash_fn_;
  std::vector<std::unique_ptr<FullSyncSlidingSite>> sites_;
  std::unique_ptr<FullSyncSlidingCoordinator> coordinator_;
  std::unique_ptr<sim::Runner> runner_;
};

/// Exact distributed bottom-s sliding-window deployment (full-sync).
class BottomSSlidingSystem {
 public:
  explicit BottomSSlidingSystem(const core::SlidingSystemConfig& config);

  net::Transport& bus() noexcept { return *transport_; }
  sim::Runner& runner() noexcept { return *runner_; }
  const BottomSSlidingCoordinator& coordinator() const noexcept {
    return *coordinator_;
  }
  const hash::HashFunction& hash_fn() const noexcept { return hash_fn_; }
  std::uint64_t run(sim::ArrivalSource& source) { return runner_->run(source); }

  std::size_t total_site_state() const noexcept;
  std::size_t max_site_state() const noexcept;

 private:
  std::unique_ptr<net::Transport> transport_;
  hash::HashFunction hash_fn_;
  std::vector<std::unique_ptr<BottomSSlidingSite>> sites_;
  std::unique_ptr<BottomSSlidingCoordinator> coordinator_;
  std::unique_ptr<sim::Runner> runner_;
};

}  // namespace dds::baseline
