// Deployment facades for the baseline protocols — the same templated
// core::Deployment builder as core/system.h, instantiated with baseline
// traits, so benches can swap algorithms behind one shape.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baseline/broadcast.h"
#include "baseline/centralized.h"
#include "baseline/drs.h"
#include "baseline/fullsync_bottom_s.h"
#include "baseline/sliding_fullsync.h"
#include "core/deployment.h"
#include "core/system.h"
#include "sim/runner.h"

namespace dds::baseline {

/// Algorithm Broadcast (Section 5.2 comparison). The coordinator pushes
/// every threshold change to ALL sites, so this protocol cannot run on
/// the sharded engine (a reply fans out beyond the reporting site) —
/// its deployments always use the serial engine.
struct BroadcastTraits {
  using Site = BroadcastSite;
  using Coordinator = BroadcastCoordinator;
  struct Options {
    bool suppress_duplicates = false;
  };
  struct Shared {
    hash::HashFunction hash_fn;
  };
  static constexpr bool kInvokeSlotBegin = false;
  static constexpr bool kShardableCoordinator = false;
  static constexpr bool kShardableSites = false;

  static Shared make_shared(const core::SystemConfig& config) {
    // Same seed derivation as InfiniteSystem so head-to-head runs use
    // the identical hash function.
    return Shared{
        hash::HashFunction(config.hash_kind,
                           util::derive_seed(config.seed, 0xA5))};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/,
      const core::SystemConfig& config, const Shared& /*shared*/,
      const Options& /*options*/) {
    return std::make_unique<Coordinator>(id, config.sample_size,
                                         config.num_sites);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const core::SystemConfig& /*config*/,
                                         const Shared& shared,
                                         const Options& options) {
    return std::make_unique<Site>(id, coordinator, shared.hash_fn,
                                  options.suppress_duplicates);
  }
};

/// Ship-everything baseline.
struct CentralizedTraits {
  using Site = ForwardingSite;
  using Coordinator = CentralizedCoordinator;
  struct Options {};
  struct Shared {
    hash::HashFunction hash_fn;
  };
  static constexpr bool kInvokeSlotBegin = false;
  static constexpr bool kShardableCoordinator = false;
  static constexpr bool kShardableSites = true;

  static Shared make_shared(const core::SystemConfig& config) {
    return Shared{
        hash::HashFunction(config.hash_kind,
                           util::derive_seed(config.seed, 0xA5))};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/,
      const core::SystemConfig& config, const Shared& /*shared*/,
      const Options& /*options*/) {
    return std::make_unique<Coordinator>(id, config.sample_size);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const core::SystemConfig& /*config*/,
                                         const Shared& shared,
                                         const Options& /*options*/) {
    return std::make_unique<Site>(id, coordinator, shared.hash_fn);
  }
};

/// Distributed random (frequency-weighted) sampling baseline.
struct DrsTraits {
  using Site = DrsSite;
  using Coordinator = DrsCoordinator;
  struct Options {};
  struct Shared {};
  static constexpr bool kInvokeSlotBegin = false;
  /// DRS tags are drawn fresh per occurrence, so there is no element
  /// space to hash-partition — single coordinator only.
  static constexpr bool kShardableCoordinator = false;
  static constexpr bool kShardableSites = true;

  static Shared make_shared(const core::SystemConfig& /*config*/) {
    return Shared{};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/,
      const core::SystemConfig& config, const Shared& /*shared*/,
      const Options& /*options*/) {
    return std::make_unique<Coordinator>(id, config.sample_size);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const core::SystemConfig& config,
                                         const Shared& /*shared*/,
                                         const Options& /*options*/) {
    return std::make_unique<Site>(id, coordinator,
                                  util::derive_seed(config.seed, 0xE00 + id));
  }
};

/// Full-sync sliding-window baseline (exact; message-heavy).
struct FullSyncSlidingTraits {
  using Site = FullSyncSlidingSite;
  using Coordinator = FullSyncSlidingCoordinator;
  struct Options {};
  struct Shared {
    hash::HashFunction hash_fn;
  };
  static constexpr bool kInvokeSlotBegin = true;
  static constexpr bool kShardableCoordinator = false;
  static constexpr bool kShardableSites = true;

  static Shared make_shared(const core::SystemConfig& config) {
    // Match SlidingSystem's hash: family member 0 with the same seed
    // derivation, so the two protocols sample identical elements.
    return Shared{hash::HashFamily(config.hash_kind,
                                   util::derive_seed(config.seed, 0xC7))
                      .at(0)};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/,
      const core::SystemConfig& config, const Shared& /*shared*/,
      const Options& /*options*/) {
    return std::make_unique<Coordinator>(id, config.num_sites);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const core::SystemConfig& config,
                                         const Shared& shared,
                                         const Options& /*options*/) {
    return std::make_unique<Site>(id, coordinator, config.window,
                                  shared.hash_fn,
                                  util::derive_seed(config.seed, 0xF00 + id),
                                  config.substrate);
  }
};

/// Exact distributed bottom-s sliding-window baseline (full-sync).
struct BottomSSlidingTraits {
  using Site = BottomSSlidingSite;
  using Coordinator = BottomSSlidingCoordinator;
  struct Options {};
  struct Shared {
    hash::HashFunction hash_fn;
  };
  static constexpr bool kInvokeSlotBegin = true;
  static constexpr bool kShardableCoordinator = false;
  static constexpr bool kShardableSites = true;

  static Shared make_shared(const core::SystemConfig& config) {
    // Family member 0 with SlidingSystem's derivation: head-to-head
    // runs against the parallel-copies scheme share instance 0's hash.
    return Shared{hash::HashFamily(config.hash_kind,
                                   util::derive_seed(config.seed, 0xC7))
                      .at(0)};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/,
      const core::SystemConfig& config, const Shared& /*shared*/,
      const Options& /*options*/) {
    return std::make_unique<Coordinator>(id, config.sample_size);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const core::SystemConfig& config,
                                         const Shared& shared,
                                         const Options& /*options*/) {
    return std::make_unique<Site>(id, coordinator, config.sample_size,
                                  config.window, shared.hash_fn,
                                  util::derive_seed(config.seed, 0xB05 + id));
  }
};

using BroadcastSystem = core::Deployment<BroadcastTraits>;
using CentralizedSystem = core::Deployment<CentralizedTraits>;
using DrsSystem = core::Deployment<DrsTraits>;
using FullSyncSlidingSystem = core::Deployment<FullSyncSlidingTraits>;
using BottomSSlidingSystem = core::Deployment<BottomSSlidingTraits>;

}  // namespace dds::baseline
