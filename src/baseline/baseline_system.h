// Deployment facades for the baseline protocols — the same templated
// core::Deployment builder as core/system.h, instantiated with baseline
// traits, so benches can swap algorithms behind one shape.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baseline/broadcast.h"
#include "baseline/centralized.h"
#include "baseline/drs.h"
#include "baseline/fullsync_bottom_s.h"
#include "baseline/sliding_fullsync.h"
#include "core/deployment.h"
#include "core/system.h"
#include "query/merge.h"
#include "sim/runner.h"

namespace dds::baseline {

/// Algorithm Broadcast (Section 5.2 comparison). The coordinator pushes
/// every threshold change to ALL sites, so this protocol cannot run on
/// the sharded engine (a reply fans out beyond the reporting site) —
/// its deployments always use the serial engine.
struct BroadcastTraits {
  using Site = BroadcastSite;
  using Coordinator = BroadcastCoordinator;
  struct Options {
    bool suppress_duplicates = false;
  };
  struct Shared {
    hash::HashFunction hash_fn;
  };
  static constexpr bool kInvokeSlotBegin = false;
  static constexpr bool kShardableCoordinator = false;
  static constexpr bool kShardableSites = false;

  static Shared make_shared(const core::SystemConfig& config) {
    // Same seed derivation as InfiniteSystem so head-to-head runs use
    // the identical hash function.
    return Shared{
        hash::HashFunction(config.hash_kind,
                           util::derive_seed(config.seed, 0xA5))};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/,
      const core::SystemConfig& config, const Shared& /*shared*/,
      const Options& /*options*/) {
    return std::make_unique<Coordinator>(id, config.sample_size,
                                         config.num_sites);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const core::SystemConfig& /*config*/,
                                         const Shared& shared,
                                         const Options& options) {
    return std::make_unique<Site>(id, coordinator, shared.hash_fn,
                                  options.suppress_duplicates);
  }
};

/// Ship-everything baseline.
struct CentralizedTraits {
  using Site = ForwardingSite;
  using Coordinator = CentralizedCoordinator;
  struct Options {};
  struct Shared {
    hash::HashFunction hash_fn;
  };
  static constexpr bool kInvokeSlotBegin = false;
  static constexpr bool kShardableCoordinator = false;
  static constexpr bool kShardableSites = true;

  static Shared make_shared(const core::SystemConfig& config) {
    return Shared{
        hash::HashFunction(config.hash_kind,
                           util::derive_seed(config.seed, 0xA5))};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/,
      const core::SystemConfig& config, const Shared& /*shared*/,
      const Options& /*options*/) {
    return std::make_unique<Coordinator>(id, config.sample_size);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const core::SystemConfig& /*config*/,
                                         const Shared& shared,
                                         const Options& /*options*/) {
    return std::make_unique<Site>(id, coordinator, shared.hash_fn);
  }
};

/// Distributed random (frequency-weighted) sampling baseline.
struct DrsTraits {
  using Site = DrsSite;
  using Coordinator = DrsCoordinator;
  struct Options {};
  struct Shared {};
  static constexpr bool kInvokeSlotBegin = false;
  /// DRS tags are drawn fresh per occurrence, so there is no element
  /// space to hash-partition — single coordinator only.
  static constexpr bool kShardableCoordinator = false;
  static constexpr bool kShardableSites = true;

  static Shared make_shared(const core::SystemConfig& /*config*/) {
    return Shared{};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/,
      const core::SystemConfig& config, const Shared& /*shared*/,
      const Options& /*options*/) {
    return std::make_unique<Coordinator>(id, config.sample_size);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const core::SystemConfig& config,
                                         const Shared& /*shared*/,
                                         const Options& /*options*/) {
    return std::make_unique<Site>(id, coordinator,
                                  util::derive_seed(config.seed, 0xE00 + id));
  }
};

/// Full-sync sliding-window baseline (exact; message-heavy).
struct FullSyncSlidingTraits {
  using Site = FullSyncSlidingSite;
  using Coordinator = FullSyncSlidingCoordinator;
  struct Options {};
  struct Shared {
    hash::HashFunction hash_fn;
  };
  static constexpr bool kInvokeSlotBegin = true;
  /// Shard j's coordinator holds every site's current partition-j
  /// minimum, so its answer is the EXACT window minimum of partition j
  /// at every slot; the validity-aware merge of the shard minima is
  /// therefore the exact global window minimum — per-slot bit-identical
  /// to the unsharded coordinator.
  static constexpr bool kShardableCoordinator = true;
  static constexpr bool kShardableSites = true;

  static Shared make_shared(const core::SystemConfig& config) {
    // Match SlidingSystem's hash: family member 0 with the same seed
    // derivation, so the two protocols sample identical elements.
    return Shared{hash::HashFamily(config.hash_kind,
                                   util::derive_seed(config.seed, 0xC7))
                      .at(0)};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/,
      const core::SystemConfig& config, const Shared& /*shared*/,
      const Options& /*options*/) {
    return std::make_unique<Coordinator>(id, config.num_sites);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const core::SystemConfig& config,
                                         const Shared& shared,
                                         const Options& /*options*/) {
    return std::make_unique<Site>(id, coordinator, config.window,
                                  shared.hash_fn,
                                  util::derive_seed(config.seed, 0xF00 + id),
                                  config.substrate);
  }
  /// Exact global window minimum: validity-aware min over the shards'
  /// exact partition minima at `now`.
  static std::optional<treap::Candidate> merge_samples_at(
      const std::vector<std::unique_ptr<Coordinator>>& coordinators,
      const core::SystemConfig& /*config*/, sim::Slot now) {
    query::SlidingValidityMerger merger(/*sample_size=*/1, now);
    for (const auto& coordinator : coordinators) {
      merger.offer(coordinator->sample(now));
    }
    return merger.min_hash();
  }
};

/// Exact distributed bottom-s sliding-window baseline (full-sync).
struct BottomSSlidingTraits {
  using Site = BottomSSlidingSite;
  using Coordinator = BottomSSlidingCoordinator;
  struct Options {};
  struct Shared {
    hash::HashFunction hash_fn;
  };
  static constexpr bool kInvokeSlotBegin = true;
  /// Shard j's coordinator pools partition j's local-bottom-s reports
  /// (an SDominanceSet), so its answer is the EXACT window bottom-s of
  /// partition j at every slot. Every member of the global window
  /// bottom-s is in its own partition's bottom-s, so the validity-aware
  /// bottom-s of the shard answers' union is per-slot bit-identical to
  /// the unsharded coordinator — the exactness proof test lives in
  /// tests/sliding_shard_test.cpp.
  static constexpr bool kShardableCoordinator = true;
  static constexpr bool kShardableSites = true;

  static Shared make_shared(const core::SystemConfig& config) {
    // Family member 0 with SlidingSystem's derivation: head-to-head
    // runs against the parallel-copies scheme share instance 0's hash.
    return Shared{hash::HashFamily(config.hash_kind,
                                   util::derive_seed(config.seed, 0xC7))
                      .at(0)};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/,
      const core::SystemConfig& config, const Shared& /*shared*/,
      const Options& /*options*/) {
    return std::make_unique<Coordinator>(id, config.sample_size);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const core::SystemConfig& config,
                                         const Shared& shared,
                                         const Options& /*options*/) {
    return std::make_unique<Site>(id, coordinator, config.sample_size,
                                  config.window, shared.hash_fn,
                                  util::derive_seed(config.seed, 0xB05 + id));
  }
  /// Exact global window bottom-s: validity-aware bottom-s of the
  /// shards' exact partition bottom-s answers. `now` must be
  /// non-decreasing across queries — each shard's pool sweeps expiry
  /// at query time (see BottomSSlidingCoordinator::sample).
  static std::vector<treap::Candidate> merge_samples_at(
      const std::vector<std::unique_ptr<Coordinator>>& coordinators,
      const core::SystemConfig& config, sim::Slot now) {
    query::SlidingValidityMerger merger(config.sample_size, now);
    for (const auto& coordinator : coordinators) {
      merger.add(coordinator->sample(now));
    }
    return merger.bottom_s();
  }
};

using BroadcastSystem = core::Deployment<BroadcastTraits>;
using CentralizedSystem = core::Deployment<CentralizedTraits>;
using DrsSystem = core::Deployment<DrsTraits>;
using FullSyncSlidingSystem = core::Deployment<FullSyncSlidingTraits>;
using BottomSSlidingSystem = core::Deployment<BottomSSlidingTraits>;

}  // namespace dds::baseline
