// Distributed bottom-s sliding-window sampling, full-sync style — the
// without-replacement s > 1 window sampler, distributed the same way as
// the paper's Section 4.1 no-feedback sketch: whenever a tuple enters a
// site's local bottom-s (or its expiry refreshes while it is there), the
// site ships it to the coordinator; the coordinator pools per-site
// candidates and answers queries with the bottom-s of the live pool.
//
// Exactness: every element of the global window bottom-s is, at its own
// site, inside the local bottom-s (fewer than s smaller hashes exist
// globally, hence locally), so the site has shipped it with its current
// expiry; stale pool entries age out by timestamp, so the coordinator's
// answer equals the true window bottom-s at every slot. The price is
// message volume (no thresholds suppress anything) — measured against
// the s-parallel-copies scheme in the abl7 bench.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/windowed_bottom_s.h"
#include "hash/hash_function.h"
#include "net/transport.h"
#include "sim/node.h"
#include "treap/s_dominance_set.h"

namespace dds::baseline {

class BottomSSlidingSite final : public sim::StreamNode {
 public:
  BottomSSlidingSite(sim::NodeId id, sim::NodeId coordinator,
                     std::size_t sample_size, sim::Slot window,
                     hash::HashFunction hash_fn,
                     std::uint64_t seed = 0x62735369ULL);

  void on_slot_begin(sim::Slot t, net::Transport& bus) override;
  void on_element(stream::Element element, sim::Slot t, net::Transport& bus) override;
  void on_element_batch(std::span<const std::uint64_t> elements, sim::Slot t,
                        net::Transport& bus) override;
  void on_message(const sim::Message& /*msg*/, net::Transport& /*bus*/) override {}

  std::size_t state_size() const noexcept override {
    return sampler_.state_size();
  }

  /// Forgets the shipped-memo and re-ships the whole current local
  /// bottom-s — the post-failover resynchronization step: one resync
  /// round from every site rebuilds a respawned-empty (or restored)
  /// coordinator pool to exactness.
  void resync(net::Transport& bus);

  /// Candidate-set image for lossless site failover (core/checkpoint.h).
  std::vector<treap::Candidate> snapshot_candidates() const {
    return sampler_.candidates().snapshot();
  }
  /// Rebuilds the candidate set from a snapshot_candidates() image and
  /// clears the shipped-memo, so the next sync re-ships everything.
  void restore_candidates(const std::vector<treap::Candidate>& items);
  /// Adopts one tuple with an arbitrary expiry — the elastic-resize
  /// migration path routes tuples from old shard copies through here.
  void absorb(const treap::Candidate& c) { sampler_.absorb(c); }

 private:
  /// Ships every tuple of the current local bottom-s the coordinator
  /// has not seen at its current expiry.
  void sync(sim::Slot now, net::Transport& bus);

  sim::NodeId id_;
  sim::NodeId coordinator_;
  core::WindowedBottomSSampler sampler_;
  /// element -> expiry last shipped; pruned to the current bottom-s.
  std::unordered_map<stream::Element, sim::Slot> shipped_;
  /// Reused per-sync scratch (sync runs per arrival — no allocations).
  std::vector<treap::Candidate> bottom_;
  std::unordered_map<stream::Element, sim::Slot> still_;
  std::vector<std::uint64_t> hash_scratch_;  ///< batched-hash buffer
};

class BottomSSlidingCoordinator final : public sim::Node {
 public:
  BottomSSlidingCoordinator(sim::NodeId id, std::size_t sample_size);

  void on_message(const sim::Message& msg, net::Transport& bus) override;
  std::size_t state_size() const noexcept override { return pool_.size(); }

  /// Exact window bottom-s at slot `now`, hash-ascending. `now` must be
  /// non-decreasing across queries (it advances the pool's expiry
  /// sweep), which every slot-clock-driven caller satisfies.
  std::vector<treap::Candidate> sample(sim::Slot now) const;

  /// sample() into a reused buffer — allocation-free per-slot queries.
  void sample_into(sim::Slot now, std::vector<treap::Candidate>& out) const;

  /// Read access to the pooled dominance set (the observability layer
  /// polls its occupancy and expiry-sweep statistics).
  const treap::SDominanceSet& pool() const noexcept { return pool_; }

  // ---- checkpoint / recovery hooks (core/checkpoint.h) --------------
  /// Forgets the pooled tuples (a respawned-empty coordinator; a site
  /// resync round restores exactness).
  void clear() { pool_.clear(); }
  /// Rebuilds the pool from a pool().snapshot() image.
  void restore_pool(const std::vector<treap::Candidate>& items) {
    pool_.load_snapshot(items);
  }

 private:
  /// The reported-tuple pool as a bottom-s dominance set: tuples whose
  /// s dominators (smaller hash, later expiry) have all been reported
  /// can never re-enter the window bottom-s, so the pool keeps
  /// O(s log(M/s)) expected state instead of every live report, and
  /// bottom_s() is an O(log n + s) ordered walk instead of a
  /// filter+sort over the full pool. In a sharded deployment this is
  /// the per-shard coordinator state. Mutable: queries advance the
  /// expiry sweep (a cache-style mutation — answers depend only on
  /// `now`).
  mutable treap::SDominanceSet pool_;
};

}  // namespace dds::baseline
