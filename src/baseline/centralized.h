// Ship-everything baseline: every site forwards every arriving element
// to the coordinator, which runs the bottom-s sketch locally. Message
// cost is exactly n (one per arrival, no replies) — the naive ceiling
// that any distributed protocol must beat, and the reference point for
// "how much does the threshold protocol save". The coordinator's sample
// is exact at all times, so this also serves as a live oracle in
// integration tests.
#pragma once

#include <cstdint>

#include "core/bottom_s_sample.h"
#include "hash/hash_function.h"
#include "net/transport.h"
#include "sim/node.h"
#include "stream/element.h"

namespace dds::baseline {

class ForwardingSite final : public sim::StreamNode {
 public:
  ForwardingSite(sim::NodeId id, sim::NodeId coordinator,
                 hash::HashFunction hash_fn);

  void on_element(stream::Element element, sim::Slot t, net::Transport& bus) override;
  void on_message(const sim::Message& /*msg*/, net::Transport& /*bus*/) override {}

  /// Stateless between arrivals (id and hash function are immutable), so
  /// speculation snapshots are trivially empty.
  bool speculation_capable() const noexcept override { return true; }
  void save_speculation_state(std::vector<std::uint8_t>& /*out*/) const override {}
  void restore_speculation_state(
      std::span<const std::uint8_t> /*image*/) override {}

 private:
  sim::NodeId id_;
  sim::NodeId coordinator_;
  hash::HashFunction hash_fn_;
};

class CentralizedCoordinator final : public sim::Node {
 public:
  CentralizedCoordinator(sim::NodeId id, std::size_t sample_size);

  void on_message(const sim::Message& msg, net::Transport& bus) override;
  std::size_t state_size() const noexcept override { return sample_.size(); }

  const core::BottomSSample& sample() const noexcept { return sample_; }

 private:
  core::BottomSSample sample_;
};

}  // namespace dds::baseline
