// Algorithm "Broadcast" — the comparison algorithm of Section 5.2.
//
// Identical sampling rule to Algorithms 1 & 2, but the coordinator keeps
// every site's threshold view exactly synchronized: whenever u changes it
// broadcasts the new u to all k sites (k messages). Sites therefore never
// send a report that fails to change the sample, and no per-report reply
// is needed — but every sample change costs k messages, which the paper's
// Figure 5.4-5.6 experiments show loses badly to the lazy scheme:
// E[broadcasts] = k * E[#sample changes] ~ k * s ln(d/s) * ... versus the
// proposed method's per-site lazy refresh.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "core/bottom_s_sample.h"
#include "hash/hash_function.h"
#include "net/transport.h"
#include "sim/node.h"
#include "stream/element.h"

namespace dds::baseline {

class BroadcastSite final : public sim::StreamNode {
 public:
  /// `suppress_duplicates` mirrors the infinite-window site's extension
  /// (see infinite_site.h): without it, re-arrivals of current sample
  /// members re-report forever (h(e) < u always). Broadcast carries no
  /// per-report reply, so suppression here remembers every element the
  /// site ever reported — re-reporting a known element can never change
  /// the coordinator's state, so skipping is always safe.
  BroadcastSite(sim::NodeId id, sim::NodeId coordinator,
                hash::HashFunction hash_fn, bool suppress_duplicates = false);

  void on_element(stream::Element element, sim::Slot t, net::Transport& bus) override;
  void on_message(const sim::Message& msg, net::Transport& bus) override;
  std::size_t state_size() const noexcept override {
    return 1 + reported_.size();
  }

  std::uint64_t local_threshold() const noexcept { return u_local_; }

 private:
  sim::NodeId id_;
  sim::NodeId coordinator_;
  hash::HashFunction hash_fn_;
  bool suppress_duplicates_;
  std::uint64_t u_local_ = hash::kHashMax;
  std::unordered_set<stream::Element> reported_;
};

class BroadcastCoordinator final : public sim::Node {
 public:
  BroadcastCoordinator(sim::NodeId id, std::size_t sample_size,
                       std::uint32_t num_sites);

  void on_message(const sim::Message& msg, net::Transport& bus) override;
  std::size_t state_size() const noexcept override { return sample_.size(); }

  const core::BottomSSample& sample() const noexcept { return sample_; }
  std::uint64_t threshold() const noexcept { return u_; }

 private:
  sim::NodeId id_;
  std::uint32_t num_sites_;
  core::BottomSSample sample_;
  std::uint64_t u_ = hash::kHashMax;
};

}  // namespace dds::baseline
