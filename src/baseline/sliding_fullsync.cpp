#include "baseline/sliding_fullsync.h"

namespace dds::baseline {

FullSyncSlidingSite::FullSyncSlidingSite(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         sim::Slot window,
                                         hash::HashFunction hash_fn,
                                         std::uint64_t seed,
                                         treap::HybridConfig substrate)
    : id_(id),
      coordinator_(coordinator),
      window_(window),
      hash_fn_(std::move(hash_fn)),
      candidates_(seed, substrate) {}

void FullSyncSlidingSite::on_slot_begin(sim::Slot t, net::Transport& bus) {
  candidates_.expire(t);
  report_if_changed(bus);
}

void FullSyncSlidingSite::on_element(stream::Element element, sim::Slot t,
                                     net::Transport& bus) {
  candidates_.observe(element, hash_fn_(element), t + window_);
  report_if_changed(bus);
}

void FullSyncSlidingSite::on_element_batch(
    std::span<const std::uint64_t> elements, sim::Slot t, net::Transport& bus) {
  const std::size_t n = elements.size();
  if (hash_scratch_.size() < n) hash_scratch_.resize(n);
  hash_fn_.hash_batch(elements.data(), n, hash_scratch_.data());
  const sim::Slot expiry = t + window_;
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) candidates_.prefetch(elements[i + 1]);
    candidates_.observe(elements[i], hash_scratch_[i], expiry);
    report_if_changed(bus);
    // Per-element drain boundary (batch contract); this protocol has no
    // replies, but the delivered trace must still interleave the same.
    bus.drain();
  }
}

void FullSyncSlidingSite::report_if_changed(net::Transport& bus) {
  const auto current = candidates_.min_hash();
  const bool valid = current.has_value();
  if (valid == reported_valid_ &&
      (!valid || *current == last_reported_)) {
    return;
  }
  report(bus);
}

void FullSyncSlidingSite::report(net::Transport& bus) {
  const auto current = candidates_.min_hash();
  const bool valid = current.has_value();
  sim::Message msg;
  msg.from = id_;
  msg.to = coordinator_;
  msg.type = sim::MsgType::kSlidingReport;
  msg.instance = next_seq_++;
  if (valid) {
    msg.a = current->element;
    msg.b = current->hash;
    msg.c = static_cast<std::uint64_t>(current->expiry);
    last_reported_ = *current;
  } else {
    msg.a = 0;
    msg.b = hash::kHashMax;  // sentinel: site has no candidate
    msg.c = 0;
  }
  reported_valid_ = valid;
  bus.send(msg);
}

void FullSyncSlidingSite::resync(net::Transport& bus) { report(bus); }

void FullSyncSlidingSite::restore_candidates(
    const std::vector<treap::Candidate>& items) {
  candidates_.load_snapshot(items);
  reported_valid_ = false;
  last_reported_ = treap::Candidate{};
}

FullSyncSlidingCoordinator::FullSyncSlidingCoordinator(sim::NodeId /*id*/,
                                                       std::uint32_t num_sites)
    : per_site_(num_sites) {}

void FullSyncSlidingCoordinator::on_message(const sim::Message& msg,
                                            net::Transport& /*bus*/) {
  if (msg.type != sim::MsgType::kSlidingReport) return;
  if (msg.from >= per_site_.size()) return;
  PerSite& slot = per_site_[msg.from];
  // Ignore reports older than the freshest one applied: a dropped
  // transmission that retransmits after a newer report was delivered
  // must not roll the entry back (lossy/jittery wires reorder).
  if (msg.instance <= slot.last_seq) return;
  slot.last_seq = msg.instance;
  if (msg.b == hash::kHashMax) {
    slot.valid = false;
  } else {
    slot.valid = true;
    slot.candidate =
        treap::Candidate{msg.a, msg.b, static_cast<sim::Slot>(msg.c)};
  }
}

void FullSyncSlidingCoordinator::restore_site(
    std::uint32_t i, const std::optional<treap::Candidate>& c) {
  if (i >= per_site_.size()) return;
  PerSite& slot = per_site_[i];
  slot.valid = c.has_value();
  slot.candidate = c.value_or(treap::Candidate{});
  slot.last_seq = 0;
}

void FullSyncSlidingCoordinator::clear() {
  for (PerSite& slot : per_site_) slot = PerSite{};
}

std::size_t FullSyncSlidingCoordinator::state_size() const noexcept {
  std::size_t n = 0;
  for (const auto& s : per_site_) n += s.valid ? 1 : 0;
  return n;
}

std::optional<treap::Candidate> FullSyncSlidingCoordinator::sample(
    sim::Slot now) const {
  std::optional<treap::Candidate> best;
  for (const auto& s : per_site_) {
    if (!s.valid || s.candidate.expiry <= now) continue;
    if (!best || s.candidate.hash < best->hash) best = s.candidate;
  }
  return best;
}

}  // namespace dds::baseline
