#include "baseline/broadcast.h"

namespace dds::baseline {

BroadcastSite::BroadcastSite(sim::NodeId id, sim::NodeId coordinator,
                             hash::HashFunction hash_fn,
                             bool suppress_duplicates)
    : id_(id),
      coordinator_(coordinator),
      hash_fn_(std::move(hash_fn)),
      suppress_duplicates_(suppress_duplicates) {}

void BroadcastSite::on_element(stream::Element element, sim::Slot /*t*/,
                               net::Transport& bus) {
  if (suppress_duplicates_ && reported_.contains(element)) return;
  const std::uint64_t hv = hash_fn_(element);
  if (hv < u_local_) {
    if (suppress_duplicates_) reported_.insert(element);
    sim::Message msg;
    msg.from = id_;
    msg.to = coordinator_;
    msg.type = sim::MsgType::kReportElement;
    msg.a = element;
    msg.b = hv;
    bus.send(msg);
  }
}

void BroadcastSite::on_message(const sim::Message& msg, net::Transport& /*bus*/) {
  if (msg.type == sim::MsgType::kThresholdBroadcast) {
    u_local_ = msg.b;
  }
}

BroadcastCoordinator::BroadcastCoordinator(sim::NodeId id,
                                           std::size_t sample_size,
                                           std::uint32_t num_sites)
    : id_(id), num_sites_(num_sites), sample_(sample_size) {}

void BroadcastCoordinator::on_message(const sim::Message& msg, net::Transport& bus) {
  if (msg.type != sim::MsgType::kReportElement) return;
  if (msg.b >= u_) return;  // cannot happen when views are in sync
  const auto outcome = sample_.offer(msg.a, msg.b);
  std::uint64_t new_u = u_;
  // Insert-then-discard semantics of Algorithm 2: u tightens to max(P)
  // on every accepted new-element report once P is full (see
  // infinite_coordinator.cpp).
  if (outcome == core::BottomSSample::Outcome::kReplaced ||
      outcome == core::BottomSSample::Outcome::kRejected) {
    new_u = sample_.max_hash();
  }
  if (new_u != u_) {
    u_ = new_u;
    // The defining behaviour: push the new threshold to every site.
    for (std::uint32_t i = 0; i < num_sites_; ++i) {
      sim::Message out;
      out.from = id_;
      out.to = i;
      out.type = sim::MsgType::kThresholdBroadcast;
      out.b = u_;
      bus.send(out);
    }
  }
}

}  // namespace dds::baseline
