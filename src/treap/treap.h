// A randomized search tree (treap; Seidel & Aragon 1996) — the data
// structure the paper prescribes for the sliding-window per-site
// candidate set T_i (Chapter 4). Keys are BST-ordered; heap priorities
// drawn from a per-tree PRNG keep the expected depth logarithmic.
//
// Beyond the textbook operations this treap supports the two bulk
// operations the dominance set needs, both via split/merge:
//   * remove-prefix-while(pred): detach the maximal prefix (in key order)
//     whose elements satisfy a *prefix-monotone* predicate;
//   * remove-suffix-while(pred): symmetric, for dominance pruning.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "util/rng.h"

namespace dds::treap {

/// Ordered map on unique keys with expected O(log n) updates.
/// K must be strictly ordered by Compare; V is arbitrary payload.
template <typename K, typename V, typename Compare = std::less<K>>
class Treap {
 public:
  explicit Treap(std::uint64_t seed = 0x7265617021ULL) : rng_(seed) {}

  std::size_t size() const noexcept { return size_of(root_.get()); }
  bool empty() const noexcept { return root_ == nullptr; }

  /// Inserts key->value. Returns false (and leaves the tree unchanged)
  /// if the key is already present.
  bool insert(const K& key, const V& value) {
    if (contains(key)) return false;
    auto node = std::make_unique<Node>(key, value, rng_.next());
    auto [left, right] = split(std::move(root_), key);
    root_ = merge(merge(std::move(left), std::move(node)), std::move(right));
    return true;
  }

  /// Removes a key. Returns false if absent.
  bool erase(const K& key) {
    bool removed = false;
    root_ = erase_rec(std::move(root_), key, removed);
    return removed;
  }

  bool contains(const K& key) const {
    const Node* cur = root_.get();
    while (cur != nullptr) {
      if (cmp_(key, cur->key)) {
        cur = cur->left.get();
      } else if (cmp_(cur->key, key)) {
        cur = cur->right.get();
      } else {
        return true;
      }
    }
    return false;
  }

  /// Pointer to the value for key, or nullptr.
  const V* find(const K& key) const {
    const Node* cur = root_.get();
    while (cur != nullptr) {
      if (cmp_(key, cur->key)) {
        cur = cur->left.get();
      } else if (cmp_(cur->key, key)) {
        cur = cur->right.get();
      } else {
        return &cur->value;
      }
    }
    return nullptr;
  }

  /// Smallest key (asserts non-empty).
  std::pair<K, V> front() const {
    const Node* cur = root_.get();
    assert(cur != nullptr);
    while (cur->left) cur = cur->left.get();
    return {cur->key, cur->value};
  }

  /// Largest key (asserts non-empty).
  std::pair<K, V> back() const {
    const Node* cur = root_.get();
    assert(cur != nullptr);
    while (cur->right) cur = cur->right.get();
    return {cur->key, cur->value};
  }

  /// Detaches the maximal prefix (ascending key order) on which `pred`
  /// holds; pred must be prefix-monotone (once false, false for all
  /// larger keys). Each detached (key, value) is passed to `sink`.
  template <typename Pred, typename Sink>
  void remove_prefix_while(Pred pred, Sink sink) {
    auto [taken, rest] = split_prefix(std::move(root_), pred);
    root_ = std::move(rest);
    drain_in_order(std::move(taken), sink);
  }

  /// Symmetric: detaches the maximal suffix (descending from the largest
  /// key) on which `pred` holds; pred must be suffix-monotone.
  template <typename Pred, typename Sink>
  void remove_suffix_while(Pred pred, Sink sink) {
    auto [rest, taken] = split_suffix(std::move(root_), pred);
    root_ = std::move(rest);
    drain_in_order(std::move(taken), sink);
  }

  /// Smallest key >= `key`, or nullopt.
  std::optional<K> lower_bound_key(const K& key) const {
    const Node* cur = root_.get();
    const Node* best = nullptr;
    while (cur != nullptr) {
      if (cmp_(cur->key, key)) {
        cur = cur->right.get();
      } else {
        best = cur;
        cur = cur->left.get();
      }
    }
    return best == nullptr ? std::nullopt : std::optional<K>(best->key);
  }

  /// Splits off all keys strictly below `key` into a separate treap;
  /// this treap keeps the keys >= `key`.
  Treap split_off_lower(const K& key) {
    auto [lo, hi] = split(std::move(root_), key);
    root_ = std::move(hi);
    Treap out(rng_.next());
    out.root_ = std::move(lo);
    return out;
  }

  /// Merges `lower` back; every key in `lower` must be strictly smaller
  /// than every key in this treap.
  void absorb_lower(Treap&& lower) {
    root_ = merge(std::move(lower.root_), std::move(root_));
  }

  /// In-order traversal.
  template <typename Fn>
  void for_each(Fn fn) const {
    for_each_rec(root_.get(), fn);
  }

  void clear() noexcept { root_.reset(); }

  /// Verifies BST order, heap order on priorities, and size counters.
  /// Test hook; O(n).
  bool check_invariants() const {
    return check_rec(root_.get(), nullptr, nullptr).ok;
  }

  /// Expected depth diagnostics for the space benches: max node depth.
  std::size_t max_depth() const { return depth_rec(root_.get()); }

 private:
  struct Node {
    Node(const K& k, const V& v, std::uint64_t prio)
        : key(k), value(v), priority(prio) {}
    K key;
    V value;
    std::uint64_t priority;
    std::size_t size = 1;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };
  using NodePtr = std::unique_ptr<Node>;

  static std::size_t size_of(const Node* n) noexcept {
    return n == nullptr ? 0 : n->size;
  }

  static void update(Node* n) noexcept {
    if (n != nullptr) {
      n->size = 1 + size_of(n->left.get()) + size_of(n->right.get());
    }
  }

  /// Splits into (< key, >= key). `key` itself goes right if present.
  std::pair<NodePtr, NodePtr> split(NodePtr node, const K& key) {
    if (node == nullptr) return {nullptr, nullptr};
    if (cmp_(node->key, key)) {
      auto [mid, right] = split(std::move(node->right), key);
      node->right = std::move(mid);
      update(node.get());
      return {std::move(node), std::move(right)};
    }
    auto [left, mid] = split(std::move(node->left), key);
    node->left = std::move(mid);
    update(node.get());
    return {std::move(left), std::move(node)};
  }

  /// Splits into (prefix where pred holds, rest); pred prefix-monotone.
  template <typename Pred>
  std::pair<NodePtr, NodePtr> split_prefix(NodePtr node, Pred pred) {
    if (node == nullptr) return {nullptr, nullptr};
    if (pred(node->key, node->value)) {
      // Whole left subtree satisfies pred (keys smaller than node->key).
      auto [taken, rest] = split_prefix(std::move(node->right), pred);
      node->right = std::move(taken);
      update(node.get());
      return {std::move(node), std::move(rest)};
    }
    auto [taken, rest] = split_prefix(std::move(node->left), pred);
    node->left = std::move(rest);
    update(node.get());
    return {std::move(taken), std::move(node)};
  }

  /// Splits into (rest, suffix where pred holds); pred suffix-monotone.
  template <typename Pred>
  std::pair<NodePtr, NodePtr> split_suffix(NodePtr node, Pred pred) {
    if (node == nullptr) return {nullptr, nullptr};
    if (pred(node->key, node->value)) {
      auto [rest, taken] = split_suffix(std::move(node->left), pred);
      node->left = std::move(taken);
      update(node.get());
      return {std::move(rest), std::move(node)};
    }
    auto [rest, taken] = split_suffix(std::move(node->right), pred);
    node->right = std::move(rest);
    update(node.get());
    return {std::move(node), std::move(taken)};
  }

  NodePtr merge(NodePtr a, NodePtr b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    if (a->priority >= b->priority) {
      a->right = merge(std::move(a->right), std::move(b));
      update(a.get());
      return a;
    }
    b->left = merge(std::move(a), std::move(b->left));
    update(b.get());
    return b;
  }

  NodePtr erase_rec(NodePtr node, const K& key, bool& removed) {
    if (node == nullptr) return nullptr;
    if (cmp_(key, node->key)) {
      node->left = erase_rec(std::move(node->left), key, removed);
    } else if (cmp_(node->key, key)) {
      node->right = erase_rec(std::move(node->right), key, removed);
    } else {
      removed = true;
      return merge(std::move(node->left), std::move(node->right));
    }
    update(node.get());
    return node;
  }

  template <typename Sink>
  static void drain_in_order(NodePtr node, Sink& sink) {
    if (node == nullptr) return;
    drain_in_order(std::move(node->left), sink);
    sink(node->key, node->value);
    drain_in_order(std::move(node->right), sink);
  }

  template <typename Fn>
  static void for_each_rec(const Node* node, Fn& fn) {
    if (node == nullptr) return;
    for_each_rec(node->left.get(), fn);
    fn(node->key, node->value);
    for_each_rec(node->right.get(), fn);
  }

  struct CheckResult {
    bool ok = true;
    std::size_t size = 0;
  };

  CheckResult check_rec(const Node* node, const K* lo, const K* hi) const {
    if (node == nullptr) return {true, 0};
    if (lo != nullptr && !cmp_(*lo, node->key)) return {false, 0};
    if (hi != nullptr && !cmp_(node->key, *hi)) return {false, 0};
    if (node->left && node->left->priority > node->priority) return {false, 0};
    if (node->right && node->right->priority > node->priority) {
      return {false, 0};
    }
    auto l = check_rec(node->left.get(), lo, &node->key);
    auto r = check_rec(node->right.get(), &node->key, hi);
    const std::size_t total = 1 + l.size + r.size;
    return {l.ok && r.ok && node->size == total, total};
  }

  static std::size_t depth_rec(const Node* node) {
    if (node == nullptr) return 0;
    return 1 + std::max(depth_rec(node->left.get()),
                        depth_rec(node->right.get()));
  }

  NodePtr root_;
  util::Xoshiro256StarStar rng_;
  Compare cmp_{};
};

}  // namespace dds::treap
