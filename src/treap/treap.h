// A randomized search tree (treap; Seidel & Aragon 1996) — the data
// structure the paper prescribes for the sliding-window per-site
// candidate set T_i (Chapter 4). Keys are BST-ordered; heap priorities
// — a per-pool counter pushed through the mix64 finalizer, one cheap
// bijective hash per insert — keep the expected depth logarithmic.
//
// Storage layout: nodes live in one contiguous pool (std::vector) and
// children are 32-bit indices, not owning pointers. Erased slots are
// chained on an intrusive freelist (through the `left` field) and
// recycled in O(1), so steady-state insert/erase cycles perform zero
// heap allocations and traversals walk a compact array instead of
// chasing malloc'd nodes. All structural operations (split, merge,
// erase, drain) are iterative — no recursion, so adversarial shapes
// cannot overflow the call stack — using a scratch index stack that is
// reused across calls.
//
// Beyond the textbook operations this treap supports the bulk
// operations the dominance set needs, all via split/merge:
//   * remove-prefix-while(pred): detach the maximal prefix (in key order)
//     whose elements satisfy a *prefix-monotone* predicate;
//   * remove-suffix-while(pred): symmetric, for dominance pruning;
//   * remove-suffix-of-lower-while(bound, pred): the fused form of
//     split_off_lower + remove_suffix_while + absorb_lower, entirely
//     inside one pool (the dominance-pruning hot path).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace dds::treap {

/// Ordered map on unique keys with expected O(log n) updates.
/// K must be strictly ordered by Compare; both K and V must be
/// copy-assignable (slots are recycled in place). Capacity is bounded
/// by ~4 billion live nodes (32-bit indices).
///
/// Every node occupies a stable pool slot: the slot index returned by
/// insert_slot() keeps addressing the same node until that node is
/// erased (or clear() is called), no matter how the tree rotates. This
/// is what lets callers build side-indexes keyed by slot — see
/// slot_index.h — instead of owning a second element->key hash map.
///
/// Subtree sizes are maintained on every path, so the treap doubles as
/// an order-statistic tree: kth() selects by rank and rank_of() counts
/// keys below a bound, both in O(log n).
///
/// With MaxAgg = true each node additionally carries the maximum value
/// in its subtree (V must be `<`-comparable), maintained through every
/// structural operation. This turns the treap into a key-ordered /
/// value-thresholded range tree: for_each_while_value_above() walks
/// entries in key order visiting only values above a threshold, pruning
/// whole subtrees via the aggregate — expected O(log n + visited). The
/// multi-width window queries (bottom-s among tuples still valid at a
/// narrower width) are built on exactly this walk.
template <typename K, typename V, typename Compare = std::less<K>,
          bool MaxAgg = false>
class Treap {
 public:
  /// Slot sentinel: "no such node". Returned by insert_slot() on
  /// duplicate keys and by find_slot() on misses.
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  explicit Treap(std::uint64_t seed = 0x7265617021ULL)
      : prio_salt_(util::mix64(seed)) {}

  std::size_t size() const noexcept { return size_of(root_); }
  bool empty() const noexcept { return root_ == kNil; }

  /// Pre-sizes the node pool (optional; the pool also grows on demand).
  void reserve(std::size_t n) { pool_.reserve(n); }

  /// Slots currently held by the pool, live + free. Test hook for the
  /// zero-allocation steady state: insert/erase cycles must not grow it.
  std::size_t pool_slots() const noexcept { return pool_.size(); }

  /// Bytes reserved by the node pool (live + free + spare capacity).
  /// Footprint accounting for the multi-tenant memory comparison.
  std::size_t pool_bytes() const noexcept {
    return pool_.capacity() * sizeof(Node);
  }

  /// Prefetch hint: pulls the root node's cache line ahead of a descent.
  /// The batched ingest path issues this for element i+1 while element i
  /// is being processed.
  void prefetch_root() const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    if (root_ != kNil) __builtin_prefetch(&pool_[root_]);
#endif
  }

  /// Inserts key->value. Returns false (and leaves the key set
  /// unchanged) if the key is already present.
  bool insert(const K& key, const V& value) {
    return insert_slot(key, value) != kNoSlot;
  }

  /// Inserts key->value and returns the new node's pool slot, or
  /// kNoSlot (key set unchanged) if the key is already present. The
  /// slot stays valid — and key_at(slot)/value_at(slot) keep naming
  /// this entry — until the key is erased. Single root-to-leaf
  /// traversal: descend while ancestors out-prioritize the new node,
  /// then split only the subtree below the insertion point — the
  /// existence check rides along the same pass.
  std::uint32_t insert_slot(const K& key, const V& value) {
    const std::uint64_t prio = next_priority();
    path_.clear();
    std::uint32_t parent = kNil;
    bool went_left = false;
    std::uint32_t node = root_;
    while (node != kNil && pool_[node].priority >= prio) {
      Node& n = pool_[node];
      if (cmp_(key, n.key)) {
        path_.push_back(node);
        parent = node;
        went_left = true;
        node = n.left;
      } else if (cmp_(n.key, key)) {
        path_.push_back(node);
        parent = node;
        went_left = false;
        node = n.right;
      } else {
        return kNoSlot;  // present above the insertion point; untouched
      }
    }
    bool found = false;
    auto [lo, hi] = split(node, key, &found);
    std::uint32_t replacement;
    if (found) {
      replacement = merge(lo, hi);  // same keys, still a valid treap
    } else {
      replacement = acquire(key, value, prio);
      Node& f = pool_[replacement];
      f.left = lo;
      f.right = hi;
      update(replacement);
    }
    if (parent == kNil) {
      root_ = replacement;
    } else if (went_left) {
      pool_[parent].left = replacement;
    } else {
      pool_[parent].right = replacement;
    }
    if (found) return kNoSlot;
    for (std::uint32_t idx : path_) {
      ++pool_[idx].size;
      if constexpr (MaxAgg) {
        if (pool_[idx].agg < value) pool_[idx].agg = value;
      }
    }
    return replacement;
  }

  /// Removes a key. Returns false if absent.
  bool erase(const K& key) {
    path_.clear();
    std::uint32_t* slot = &root_;
    std::uint32_t node = root_;
    while (node != kNil) {
      Node& n = pool_[node];
      if (cmp_(key, n.key)) {
        path_.push_back(node);
        slot = &n.left;
        node = n.left;
      } else if (cmp_(n.key, key)) {
        path_.push_back(node);
        slot = &n.right;
        node = n.right;
      } else {
        *slot = merge(n.left, n.right);
        release(node);
        if constexpr (MaxAgg) {
          // The erased value may have been an ancestor's max; recompute
          // bottom-up (a plain decrement cannot shrink a max).
          for (std::size_t i = path_.size(); i-- > 0;) update(path_[i]);
        } else {
          for (std::uint32_t idx : path_) --pool_[idx].size;
        }
        return true;
      }
    }
    return false;
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  /// Pointer to the value for key, or nullptr. Valid until the next
  /// mutation (slots may move when the pool grows).
  const V* find(const K& key) const {
    const std::uint32_t slot = find_slot(key);
    return slot == kNoSlot ? nullptr : &pool_[slot].value;
  }

  /// Pool slot holding `key`, or kNoSlot. O(log n).
  std::uint32_t find_slot(const K& key) const {
    std::uint32_t cur = root_;
    while (cur != kNil) {
      const Node& n = pool_[cur];
      if (cmp_(key, n.key)) {
        cur = n.left;
      } else if (cmp_(n.key, key)) {
        cur = n.right;
      } else {
        return cur;
      }
    }
    return kNoSlot;
  }

  /// Key stored in `slot`. The slot must be live (obtained from
  /// insert_slot/find_slot and not erased since). The reference is
  /// valid until the next mutation — the pool may move when it grows.
  const K& key_at(std::uint32_t slot) const { return pool_[slot].key; }

  /// Value stored in `slot`; same validity rules as key_at().
  const V& value_at(std::uint32_t slot) const { return pool_[slot].value; }

  /// The i-th smallest entry (0-based), or nullopt if i >= size().
  /// O(log n) via the subtree-size counters.
  std::optional<std::pair<K, V>> kth(std::size_t i) const {
    if (i >= size()) return std::nullopt;
    std::uint32_t cur = root_;
    while (true) {
      const Node& n = pool_[cur];
      const std::size_t left = size_of(n.left);
      if (i < left) {
        cur = n.left;
      } else if (i == left) {
        return std::make_pair(n.key, n.value);
      } else {
        i -= left + 1;
        cur = n.right;
      }
    }
  }

  /// Number of stored keys strictly below `key` (== the rank `key`
  /// would have). O(log n) via the subtree-size counters.
  std::size_t rank_of(const K& key) const {
    std::size_t rank = 0;
    std::uint32_t cur = root_;
    while (cur != kNil) {
      const Node& n = pool_[cur];
      if (cmp_(n.key, key)) {
        rank += size_of(n.left) + 1;
        cur = n.right;
      } else {
        cur = n.left;
      }
    }
    return rank;
  }

  /// Ascending in-order traversal that stops early: `fn(key, value)`
  /// returns true to continue, false to stop. Returns true iff the
  /// traversal visited every entry. The scratch stack is used as an
  /// arena, so fn may start another while-traversal of this same treap
  /// (it must still not mutate it); not thread-safe.
  template <typename Fn>
  bool for_each_while(Fn fn) const {
    const std::size_t base = walk_.size();
    std::uint32_t cur = root_;
    bool complete = true;
    while (cur != kNil || walk_.size() > base) {
      while (cur != kNil) {
        walk_.push_back(cur);
        cur = pool_[cur].left;
      }
      cur = walk_.back();
      walk_.pop_back();
      if (!fn(pool_[cur].key, pool_[cur].value)) {
        complete = false;
        break;
      }
      cur = pool_[cur].right;
    }
    walk_.resize(base);
    return complete;
  }

  /// In-order traversal restricted to entries whose value compares
  /// strictly above `threshold`. Requires MaxAgg: subtrees whose
  /// max-value aggregate is <= threshold are skipped wholesale, so the
  /// walk costs expected O(log n + visited) instead of O(n). `fn(key,
  /// value)` returns true to continue; returns true iff every qualifying
  /// entry was visited. Same arena re-entrancy rules as for_each_while.
  ///
  /// This is the multi-width window query: with values = expiry slots
  /// and keys = (hash, element), the bottom-s tuples still valid at a
  /// narrower width w are the first s entries with expiry > now + (W-w).
  template <typename Fn>
  bool for_each_while_value_above(const V& threshold, Fn fn) const {
    static_assert(MaxAgg,
                  "for_each_while_value_above needs the max-value aggregate");
    const std::size_t base = walk_.size();
    std::uint32_t cur = root_;
    bool complete = true;
    while (true) {
      while (cur != kNil && threshold < pool_[cur].agg) {
        walk_.push_back(cur);
        cur = pool_[cur].left;
      }
      if (walk_.size() == base) break;
      cur = walk_.back();
      walk_.pop_back();
      const Node& n = pool_[cur];
      if (threshold < n.value && !fn(n.key, n.value)) {
        complete = false;
        break;
      }
      cur = n.right;
    }
    walk_.resize(base);
    return complete;
  }

  /// Descending in-order traversal that stops early; mirror of
  /// for_each_while (same re-entrancy rules). Returns true iff every
  /// entry was visited.
  template <typename Fn>
  bool for_each_reverse_while(Fn fn) const {
    const std::size_t base = walk_.size();
    std::uint32_t cur = root_;
    bool complete = true;
    while (cur != kNil || walk_.size() > base) {
      while (cur != kNil) {
        walk_.push_back(cur);
        cur = pool_[cur].right;
      }
      cur = walk_.back();
      walk_.pop_back();
      if (!fn(pool_[cur].key, pool_[cur].value)) {
        complete = false;
        break;
      }
      cur = pool_[cur].left;
    }
    walk_.resize(base);
    return complete;
  }

  /// Smallest key with its value, or nullopt if empty.
  std::optional<std::pair<K, V>> front() const {
    if (root_ == kNil) return std::nullopt;
    std::uint32_t cur = root_;
    while (pool_[cur].left != kNil) cur = pool_[cur].left;
    return std::make_pair(pool_[cur].key, pool_[cur].value);
  }

  /// Largest key with its value, or nullopt if empty.
  std::optional<std::pair<K, V>> back() const {
    if (root_ == kNil) return std::nullopt;
    std::uint32_t cur = root_;
    while (pool_[cur].right != kNil) cur = pool_[cur].right;
    return std::make_pair(pool_[cur].key, pool_[cur].value);
  }

  /// Detaches the maximal prefix (ascending key order) on which `pred`
  /// holds; pred must be prefix-monotone (once false, false for all
  /// larger keys). Each detached (key, value) is passed to `sink`.
  /// The sink must not re-enter this treap.
  template <typename Pred, typename Sink>
  void remove_prefix_while(Pred pred, Sink sink) {
    auto [taken, rest] = split_prefix(root_, pred);
    root_ = rest;
    drain_in_order(taken, sink);
  }

  /// Symmetric: detaches the maximal suffix (descending from the largest
  /// key) on which `pred` holds; pred must be suffix-monotone.
  template <typename Pred, typename Sink>
  void remove_suffix_while(Pred pred, Sink sink) {
    auto [rest, taken] = split_suffix(root_, pred);
    root_ = rest;
    drain_in_order(taken, sink);
  }

  /// Within the keys strictly below `bound`, detaches the maximal
  /// suffix on which `pred` holds (pred suffix-monotone over that
  /// sub-range) and passes each detached entry to `sink`. Equivalent to
  /// split_off_lower(bound) + remove_suffix_while + absorb_lower, but
  /// fused: O(log n + removed), no node copies, one pool.
  template <typename Pred, typename Sink>
  void remove_suffix_of_lower_while(const K& bound, Pred pred, Sink sink) {
    auto [lo, hi] = split(root_, bound, nullptr);
    auto [rest, taken] = split_suffix(lo, pred);
    root_ = merge(rest, hi);
    drain_in_order(taken, sink);
  }

  /// Smallest key >= `key`, or nullopt.
  std::optional<K> lower_bound_key(const K& key) const {
    std::uint32_t cur = root_;
    std::uint32_t best = kNil;
    while (cur != kNil) {
      const Node& n = pool_[cur];
      if (cmp_(n.key, key)) {
        cur = n.right;
      } else {
        best = cur;
        cur = n.left;
      }
    }
    return best == kNil ? std::nullopt : std::optional<K>(pool_[best].key);
  }

  /// Splits off all keys strictly below `key` into a separate treap;
  /// this treap keeps the keys >= `key`. With pooled storage the
  /// detached nodes are transplanted into the new treap's own pool, so
  /// this costs O(log n + moved); prefer remove_suffix_of_lower_while
  /// on hot paths that split only to prune and merge back.
  Treap split_off_lower(const K& key) {
    auto [lo, hi] = split(root_, key, nullptr);
    root_ = hi;
    Treap out(next_priority());
    out.root_ = out.clone_subtree(*this, lo);
    free_subtree(lo);
    return out;
  }

  /// Merges `lower` back; every key in `lower` must be strictly smaller
  /// than every key in this treap. O(log n + |lower|) (transplant).
  void absorb_lower(Treap&& lower) {
    const std::uint32_t moved = clone_subtree(lower, lower.root_);
    lower.clear();
    root_ = merge(moved, root_);
  }

  /// In-order traversal.
  template <typename Fn>
  void for_each(Fn fn) const {
    std::vector<std::uint32_t> stack;
    std::uint32_t cur = root_;
    while (cur != kNil || !stack.empty()) {
      while (cur != kNil) {
        stack.push_back(cur);
        cur = pool_[cur].left;
      }
      cur = stack.back();
      stack.pop_back();
      fn(pool_[cur].key, pool_[cur].value);
      cur = pool_[cur].right;
    }
  }

  void clear() noexcept {
    pool_.clear();
    root_ = kNil;
    free_head_ = kNil;
  }

  /// Verifies BST order, heap order on priorities, size counters, and
  /// pool accounting (live + free slots cover the pool exactly).
  /// Test hook; O(n).
  bool check_invariants() const {
    std::size_t free_count = 0;
    for (std::uint32_t f = free_head_; f != kNil; f = pool_[f].left) {
      if (++free_count > pool_.size()) return false;  // freelist cycle
    }
    struct Frame {
      std::uint32_t node;
      const K* lo;
      const K* hi;
    };
    std::vector<Frame> stack;
    if (root_ != kNil) stack.push_back({root_, nullptr, nullptr});
    std::size_t live = 0;
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      if (++live > pool_.size()) return false;  // structure cycle
      const Node& n = pool_[f.node];
      if (f.lo != nullptr && !cmp_(*f.lo, n.key)) return false;
      if (f.hi != nullptr && !cmp_(n.key, *f.hi)) return false;
      std::uint32_t expected = 1;
      if (n.left != kNil) {
        if (pool_[n.left].priority > n.priority) return false;
        expected += pool_[n.left].size;
        stack.push_back({n.left, f.lo, &n.key});
      }
      if (n.right != kNil) {
        if (pool_[n.right].priority > n.priority) return false;
        expected += pool_[n.right].size;
        stack.push_back({n.right, &n.key, f.hi});
      }
      if (n.size != expected) return false;
      if constexpr (MaxAgg) {
        V want = n.value;
        if (n.left != kNil && want < pool_[n.left].agg) want = pool_[n.left].agg;
        if (n.right != kNil && want < pool_[n.right].agg) {
          want = pool_[n.right].agg;
        }
        if (n.agg < want || want < n.agg) return false;
      }
    }
    return live + free_count == pool_.size();
  }

  /// Expected depth diagnostics for the space benches: max node depth.
  std::size_t max_depth() const {
    std::vector<std::pair<std::uint32_t, std::size_t>> stack;
    if (root_ != kNil) stack.emplace_back(root_, 1);
    std::size_t deepest = 0;
    while (!stack.empty()) {
      const auto [node, depth] = stack.back();
      stack.pop_back();
      deepest = std::max(deepest, depth);
      const Node& n = pool_[node];
      if (n.left != kNil) stack.emplace_back(n.left, depth + 1);
      if (n.right != kNil) stack.emplace_back(n.right, depth + 1);
    }
    return deepest;
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// Heap priority for the next insert: a per-pool counter pushed
  /// through the splitmix64 finalizer. One add + one mix64 instead of a
  /// full xoshiro step, and just as uniform — mix64 is a bijection, so
  /// salt ^ 0, salt ^ 1, ... never collide until the counter wraps.
  std::uint64_t next_priority() noexcept {
    return util::mix64(prio_salt_ ^ prio_counter_++);
  }

  struct NoAgg {};
  /// Subtree max-value aggregate; an empty tag when MaxAgg is off so the
  /// node layout (and every non-aggregated instantiation) is unchanged.
  using AggStorage = std::conditional_t<MaxAgg, V, NoAgg>;

  struct Node {
    K key;
    V value;
    std::uint64_t priority;
    std::uint32_t size;
    std::uint32_t left;   // doubles as the freelist link when released
    std::uint32_t right;
    [[no_unique_address]] AggStorage agg;
  };

  std::uint32_t size_of(std::uint32_t n) const noexcept {
    return n == kNil ? 0 : pool_[n].size;
  }

  void update(std::uint32_t n) noexcept {
    Node& nd = pool_[n];
    nd.size = 1 + size_of(nd.left) + size_of(nd.right);
    if constexpr (MaxAgg) {
      V m = nd.value;
      if (nd.left != kNil && m < pool_[nd.left].agg) m = pool_[nd.left].agg;
      if (nd.right != kNil && m < pool_[nd.right].agg) m = pool_[nd.right].agg;
      nd.agg = m;
    }
  }

  /// Takes a slot from the freelist or grows the pool. May invalidate
  /// references into the pool (indices stay valid).
  std::uint32_t acquire(const K& key, const V& value, std::uint64_t prio) {
    if (free_head_ != kNil) {
      const std::uint32_t idx = free_head_;
      Node& n = pool_[idx];
      free_head_ = n.left;
      n.key = key;
      n.value = value;
      n.priority = prio;
      n.size = 1;
      n.left = kNil;
      n.right = kNil;
      if constexpr (MaxAgg) n.agg = value;
      return idx;
    }
    assert(pool_.size() < kNil);
    pool_.push_back(Node{key, value, prio, 1, kNil, kNil});
    if constexpr (MaxAgg) pool_.back().agg = value;
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  void release(std::uint32_t idx) noexcept {
    pool_[idx].left = free_head_;
    free_head_ = idx;
  }

  /// Splits into (< key, >= key). `key` itself goes right if present;
  /// if `found` is non-null it is set when the key is encountered.
  /// Top-down two-way descent; sizes fixed bottom-up along the path.
  std::pair<std::uint32_t, std::uint32_t> split(std::uint32_t node,
                                                const K& key, bool* found) {
    std::uint32_t lo = kNil;
    std::uint32_t hi = kNil;
    std::uint32_t* lo_slot = &lo;
    std::uint32_t* hi_slot = &hi;
    scratch_.clear();
    while (node != kNil) {
      Node& n = pool_[node];
      scratch_.push_back(node);
      if (cmp_(n.key, key)) {
        *lo_slot = node;
        lo_slot = &n.right;
        node = n.right;
      } else {
        if (found != nullptr && !cmp_(key, n.key)) *found = true;
        *hi_slot = node;
        hi_slot = &n.left;
        node = n.left;
      }
    }
    *lo_slot = kNil;
    *hi_slot = kNil;
    for (std::size_t i = scratch_.size(); i-- > 0;) update(scratch_[i]);
    return {lo, hi};
  }

  /// Splits into (prefix where pred holds, rest); pred prefix-monotone.
  template <typename Pred>
  std::pair<std::uint32_t, std::uint32_t> split_prefix(std::uint32_t node,
                                                       Pred pred) {
    std::uint32_t taken = kNil;
    std::uint32_t rest = kNil;
    std::uint32_t* t_slot = &taken;
    std::uint32_t* r_slot = &rest;
    scratch_.clear();
    while (node != kNil) {
      Node& n = pool_[node];
      scratch_.push_back(node);
      if (pred(n.key, n.value)) {
        // Whole left subtree satisfies pred (keys smaller than n.key).
        *t_slot = node;
        t_slot = &n.right;
        node = n.right;
      } else {
        *r_slot = node;
        r_slot = &n.left;
        node = n.left;
      }
    }
    *t_slot = kNil;
    *r_slot = kNil;
    for (std::size_t i = scratch_.size(); i-- > 0;) update(scratch_[i]);
    return {taken, rest};
  }

  /// Splits into (rest, suffix where pred holds); pred suffix-monotone.
  template <typename Pred>
  std::pair<std::uint32_t, std::uint32_t> split_suffix(std::uint32_t node,
                                                       Pred pred) {
    std::uint32_t rest = kNil;
    std::uint32_t taken = kNil;
    std::uint32_t* r_slot = &rest;
    std::uint32_t* t_slot = &taken;
    scratch_.clear();
    while (node != kNil) {
      Node& n = pool_[node];
      scratch_.push_back(node);
      if (pred(n.key, n.value)) {
        // Whole right subtree satisfies pred (keys larger than n.key).
        *t_slot = node;
        t_slot = &n.left;
        node = n.left;
      } else {
        *r_slot = node;
        r_slot = &n.right;
        node = n.right;
      }
    }
    *r_slot = kNil;
    *t_slot = kNil;
    for (std::size_t i = scratch_.size(); i-- > 0;) update(scratch_[i]);
    return {rest, taken};
  }

  /// Top-down iterative merge; the winner's subtree size grows by the
  /// whole losing tree, so sizes update on the way down.
  std::uint32_t merge(std::uint32_t a, std::uint32_t b) {
    std::uint32_t root = kNil;
    std::uint32_t* slot = &root;
    while (true) {
      if (a == kNil) {
        *slot = b;
        break;
      }
      if (b == kNil) {
        *slot = a;
        break;
      }
      if (pool_[a].priority >= pool_[b].priority) {
        Node& n = pool_[a];
        n.size += size_of(b);
        if constexpr (MaxAgg) {
          if (n.agg < pool_[b].agg) n.agg = pool_[b].agg;
        }
        *slot = a;
        slot = &n.right;
        a = n.right;
      } else {
        Node& n = pool_[b];
        n.size += size_of(a);
        if constexpr (MaxAgg) {
          if (n.agg < pool_[a].agg) n.agg = pool_[a].agg;
        }
        *slot = b;
        slot = &n.left;
        b = n.left;
      }
    }
    return root;
  }

  /// In-order visit + release of a detached subtree.
  template <typename Sink>
  void drain_in_order(std::uint32_t node, Sink& sink) {
    scratch_.clear();
    std::uint32_t cur = node;
    while (cur != kNil || !scratch_.empty()) {
      while (cur != kNil) {
        scratch_.push_back(cur);
        cur = pool_[cur].left;
      }
      cur = scratch_.back();
      scratch_.pop_back();
      Node& n = pool_[cur];
      sink(n.key, n.value);
      const std::uint32_t next = n.right;
      release(cur);
      cur = next;
    }
  }

  /// Releases every slot of a detached subtree without visiting values.
  void free_subtree(std::uint32_t node) {
    scratch_.clear();
    if (node != kNil) scratch_.push_back(node);
    while (!scratch_.empty()) {
      const std::uint32_t cur = scratch_.back();
      scratch_.pop_back();
      const Node& n = pool_[cur];
      if (n.left != kNil) scratch_.push_back(n.left);
      if (n.right != kNil) scratch_.push_back(n.right);
      release(cur);
    }
  }

  /// Copies the structure rooted at `src_root` in `from`'s pool into
  /// this pool (priorities and sizes preserved). Returns the new root.
  std::uint32_t clone_subtree(const Treap& from, std::uint32_t src_root) {
    if (src_root == kNil) return kNil;
    const Node& sr = from.pool_[src_root];
    const std::uint32_t dst_root = acquire(sr.key, sr.value, sr.priority);
    pool_[dst_root].size = sr.size;
    if constexpr (MaxAgg) pool_[dst_root].agg = sr.agg;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;  // src, dst
    stack.emplace_back(src_root, dst_root);
    while (!stack.empty()) {
      const auto [s, d] = stack.back();
      stack.pop_back();
      for (const bool left_side : {true, false}) {
        const std::uint32_t child = left_side ? from.pool_[s].left
                                              : from.pool_[s].right;
        if (child == kNil) continue;
        const Node& cn = from.pool_[child];
        const std::uint32_t c = acquire(cn.key, cn.value, cn.priority);
        pool_[c].size = cn.size;
        if constexpr (MaxAgg) pool_[c].agg = cn.agg;
        if (left_side) {
          pool_[d].left = c;
        } else {
          pool_[d].right = c;
        }
        stack.emplace_back(child, c);
      }
    }
    return dst_root;
  }

  std::vector<Node> pool_;
  std::uint32_t root_ = kNil;
  std::uint32_t free_head_ = kNil;
  /// Reusable stacks; each grows to max depth once, then no further
  /// allocation. `path_` holds insert/erase ancestor chains (size
  /// fixups); `scratch_` is private to split/drain-style helpers. The
  /// two are live at the same time inside insert, never deeper.
  std::vector<std::uint32_t> path_;
  std::vector<std::uint32_t> scratch_;
  /// Scratch arena for the const while-traversals (for_each_while /
  /// for_each_reverse_while): each traversal operates above the size it
  /// found on entry and truncates back on exit, so traversals nest.
  /// Grows to (max depth x nesting) once, then reused.
  mutable std::vector<std::uint32_t> walk_;
  std::uint64_t prio_salt_;
  std::uint64_t prio_counter_ = 0;
  Compare cmp_{};
};

}  // namespace dds::treap
