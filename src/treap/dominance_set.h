// DominanceSet — the per-site candidate structure T_i of Algorithm 3.
//
// Stores (element, hash, expiry) tuples and maintains the paper's
// dominance invariant: a tuple (e', t') is discarded as soon as another
// tuple (e, t) with t > t' and h(e) < h(e') exists, because e' can never
// again be the minimum-hash element of the window. What survives is a
// "staircase": sorted by (expiry, hash), hash values are non-decreasing,
// so the minimum-hash candidate is always the front and every bulk
// operation is a contiguous range.
//
// Backed by the treap of treap.h (the paper's prescribed structure) plus
// an element -> tuple index for duplicate refresh. Expected size is
// H_{|D_i(t,w)|} = O(log of per-site distinct count) by Lemma 10.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/message.h"
#include "treap/treap.h"

namespace dds::treap {

/// One candidate tuple.
struct Candidate {
  std::uint64_t element = 0;
  std::uint64_t hash = 0;
  sim::Slot expiry = 0;  ///< first slot at which the tuple is no longer valid

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

class DominanceSet {
 public:
  explicit DominanceSet(std::uint64_t seed = 0x646f6dULL) : tree_(seed) {}

  /// Handles a fresh arrival of `element` whose window expiry is
  /// `expiry` (= arrival slot + w). If the element is already tracked,
  /// its expiry is refreshed; dominated tuples are pruned. `expiry` must
  /// be >= every expiry currently stored (arrivals carry the newest
  /// timestamp), which the staircase maintenance relies on.
  void observe(std::uint64_t element, std::uint64_t hash, sim::Slot expiry);

  /// Inserts a candidate with an arbitrary expiry (the coordinator's
  /// reply in Algorithm 3 line 18). No-op if the candidate is itself
  /// dominated by a stored tuple; otherwise stored tuples it dominates
  /// are pruned. If the element is already present, the later expiry wins.
  void insert(std::uint64_t element, std::uint64_t hash, sim::Slot expiry);

  /// Drops all tuples with expiry <= now (they left the window).
  void expire(sim::Slot now);

  /// The candidate with the smallest hash, or nullopt if empty. By the
  /// staircase invariant this is also the earliest-expiring tuple.
  /// Cached: O(1) until the next mutation (this is the query every
  /// slot asks, once per site).
  std::optional<Candidate> min_hash() const;

  std::size_t size() const noexcept { return tree_.size(); }
  bool empty() const noexcept { return tree_.empty(); }
  bool contains(std::uint64_t element) const {
    return index_.contains(element);
  }

  /// All candidates in (expiry, hash) order; test/debug helper.
  std::vector<Candidate> snapshot() const;

  /// Verifies treap invariants, index consistency, and the staircase
  /// (non-decreasing hash in key order). Test hook; O(n log n).
  bool check_invariants() const;

  /// Max tree depth, for space diagnostics.
  std::size_t max_depth() const { return tree_.max_depth(); }

 private:
  struct Key {
    sim::Slot expiry;
    std::uint64_t hash;
    std::uint64_t element;

    friend bool operator<(const Key& a, const Key& b) noexcept {
      if (a.expiry != b.expiry) return a.expiry < b.expiry;
      if (a.hash != b.hash) return a.hash < b.hash;
      return a.element < b.element;
    }
  };

  /// Removes stored tuples dominated by a (hash, expiry) newcomer:
  /// everything with expiry' < expiry and hash' > hash.
  void prune_dominated_by(std::uint64_t hash, sim::Slot expiry);

  /// True iff a stored tuple dominates (hash, expiry): some tuple with
  /// expiry' > expiry and hash' < hash.
  bool is_dominated(std::uint64_t hash, sim::Slot expiry) const;

  void erase_key(const Key& key);

  void invalidate_front() noexcept { front_fresh_ = false; }

  Treap<Key, char> tree_;  // payload lives in the key; value unused
  std::unordered_map<std::uint64_t, Key> index_;  // element -> its key

  // Lazily cached front (minimum-hash) candidate; refreshed on demand,
  // dropped by any mutation.
  mutable std::optional<Candidate> front_cache_;
  mutable bool front_fresh_ = false;
};

}  // namespace dds::treap
