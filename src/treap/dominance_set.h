// DominanceSet — the per-site candidate structure T_i of Algorithm 3,
// as an ADAPTIVE HYBRID substrate.
//
// Stores (element, hash, expiry) tuples and maintains the paper's
// dominance invariant: a tuple (e', t') is discarded as soon as another
// tuple (e, t) with t > t' and h(e) < h(e') exists, because e' can never
// again be the minimum-hash element of the window. What survives is a
// "staircase": sorted by (expiry, hash), hash values are non-decreasing,
// so the minimum-hash candidate is always the front and every bulk
// operation is a contiguous range.
//
// Why hybrid. Lemma 10 bounds E[|T_i|] by H_{|D_i(t,w)|} — about 10-17
// tuples for realistic windows — and at that size a flat sorted buffer
// beats any pointer structure: scans are branch-predictable, prunes are
// bulk shifts of a few cache lines, and there is nothing to rebalance.
// But bursts, long windows, and adversarial streams can grow T_i far
// past the steady state, where the flat buffer's O(|T|) updates lose to
// the pooled treap's O(log |T|). This class keeps BOTH representations
// and migrates between them with hysteresis:
//
//   * below `HybridConfig::migrate_up` tuples: a flat sorted ring
//     buffer (expiry-ordered; expiry is a head advance, prunes are
//     contiguous shifts, min-hash is the front);
//   * above it: the pooled treap of treap.h plus a SlotIndex — open
//     addressing over the treap's own pool slots — replacing the
//     historical element->key unordered_map (no second hash map, no
//     per-node bucket allocations);
//   * a set that shrinks below `migrate_down` (< migrate_up) demotes
//     back to the ring. The gap between the two thresholds is the
//     hysteresis band: churn at one boundary cannot thrash migrations.
//
// Both representations recycle their storage, so steady-state churn
// performs zero heap allocations in either mode and across migrations.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/message.h"
#include "treap/slot_index.h"
#include "treap/treap.h"

namespace dds::treap {

/// One candidate tuple.
struct Candidate {
  std::uint64_t element = 0;
  std::uint64_t hash = 0;
  sim::Slot expiry = 0;  ///< first slot at which the tuple is no longer valid

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

/// THE (expiry, hash, element) lexicographic order — the single
/// definition every substrate agrees on: the flat ring's sort, the
/// DominanceSet treap key, and the SDominanceSet by-expiry key all
/// delegate here (flat/treap migration equivalence depends on the
/// orders matching exactly).
constexpr bool sample_key_less(sim::Slot expiry_a, std::uint64_t hash_a,
                               std::uint64_t element_a, sim::Slot expiry_b,
                               std::uint64_t hash_b,
                               std::uint64_t element_b) noexcept {
  if (expiry_a != expiry_b) return expiry_a < expiry_b;
  if (hash_a != hash_b) return hash_a < hash_b;
  return element_a < element_b;
}

/// sample_key_less over Candidates (the flat ring's comparator).
constexpr bool sample_key_less(const Candidate& a,
                               const Candidate& b) noexcept {
  return sample_key_less(a.expiry, a.hash, a.element, b.expiry, b.hash,
                         b.element);
}

/// The treap key shared by DominanceSet and SDominanceSet's by-expiry
/// tree: a Candidate reordered for sample_key_less comparison.
struct SampleKey {
  sim::Slot expiry;
  std::uint64_t hash;
  std::uint64_t element;

  friend bool operator<(const SampleKey& a, const SampleKey& b) noexcept {
    return sample_key_less(a.expiry, a.hash, a.element, b.expiry, b.hash,
                           b.element);
  }
};

/// Migration thresholds for the hybrid substrates. The defaults come
/// from the micro_substrates crossover sweep (docs/substrates.md): the
/// flat ring wins decisively at the Lemma-10 steady state (~10 tuples:
/// ~18M ops/s vs ~3.8M for the treap) and stays ahead until roughly
/// 200 tuples, where the ring's O(n) scans and shifts meet the treap's
/// O(log n) + pointer-chasing constant.
///
/// Degenerate settings select a single substrate, which the benches use
/// to ablate the hybrid against its two halves:
///   * `{.migrate_up = 0}` — pure treap, never flat;
///   * `{.migrate_up = UINT32_MAX}` — pure flat ring, never a treap.
struct HybridConfig {
  /// Flat-mode size that triggers promotion to the treap (a mutation
  /// that would leave more than this many tuples migrates first).
  std::uint32_t migrate_up = 192;
  /// Treap-mode size that triggers demotion back to the ring (checked
  /// after expiry and prunes). Must be < migrate_up to give the
  /// hysteresis band; clamped if not.
  std::uint32_t migrate_down = 64;
};

/// The per-site candidate set T_i (Algorithm 3) as an adaptive hybrid:
/// a flat sorted ring buffer below HybridConfig::migrate_up tuples, the
/// pooled treap + SlotIndex above, with hysteresis between the two (see
/// the file comment for the full model). Maintains the dominance
/// invariant: a tuple is discarded as soon as a later-expiring,
/// smaller-hash tuple exists.
class DominanceSet {
 public:
  explicit DominanceSet(std::uint64_t seed = 0x646f6dULL,
                        HybridConfig hybrid = {});

  /// Handles a fresh arrival of `element` whose window expiry is
  /// `expiry` (= arrival slot + w). If the element is already tracked,
  /// its expiry is refreshed; dominated tuples are pruned. `expiry` must
  /// be >= every expiry currently stored (arrivals carry the newest
  /// timestamp), which the staircase maintenance relies on.
  void observe(std::uint64_t element, std::uint64_t hash, sim::Slot expiry);

  /// Inserts a candidate with an arbitrary expiry (the coordinator's
  /// reply in Algorithm 3 line 18). No-op if the candidate is itself
  /// dominated by a stored tuple; otherwise stored tuples it dominates
  /// are pruned. If the element is already present, the later expiry wins.
  void insert(std::uint64_t element, std::uint64_t hash, sim::Slot expiry);

  /// Drops all tuples with expiry <= now (they left the window).
  void expire(sim::Slot now);

  /// The candidate with the smallest hash, or nullopt if empty. By the
  /// staircase invariant this is also the earliest-expiring tuple.
  /// O(1): the ring's front in flat mode, cached until the next
  /// mutation in treap mode (this is the query every slot asks).
  std::optional<Candidate> min_hash() const;

  /// Multi-width query: the smallest-hash candidate among tuples with
  /// expiry strictly greater than `min_expiry`, or nullopt if none. With
  /// tuples keyed at window width W and `min_expiry = now + (W - w)`,
  /// this is the window minimum at the narrower width w (every tuple the
  /// w-window needs survives dominance pruning at W — a dominating tuple
  /// expires even later, so it is in the w-window too). O(log |T|): a
  /// binary search of the ring in flat mode, a lower_bound descent in
  /// treap mode — the staircase makes the valid suffix's first tuple its
  /// min-hash.
  std::optional<Candidate> min_hash_valid_after(sim::Slot min_expiry) const;

  /// Prefetch hint for the batched ingest pipeline: pulls the storage
  /// lines the next observe(element, ...) will touch first (ring front /
  /// index probe line + treap root).
  void prefetch(std::uint64_t element) const noexcept {
    if (flat_) {
#if defined(__GNUC__) || defined(__clang__)
      if (count_ > 0) __builtin_prefetch(&ring_[head_ & mask_]);
#endif
    } else {
      index_.prefetch(element);
      tree_.prefetch_root();
    }
  }

  /// Bytes reserved across both representations; footprint accounting
  /// for the multi-tenant memory comparison.
  std::size_t footprint_bytes() const noexcept {
    return ring_.capacity() * sizeof(Candidate) + tree_.pool_bytes() +
           index_.table_bytes();
  }

  std::size_t size() const noexcept {
    return flat_ ? count_ : tree_.size();
  }
  bool empty() const noexcept { return size() == 0; }
  bool contains(std::uint64_t element) const;

  /// All candidates in (expiry, hash) order; test/debug helper.
  std::vector<Candidate> snapshot() const;

  /// Rebuilds this set from a snapshot() image — the checkpoint/restore
  /// path. `items` must be a valid dominance set in (expiry, hash,
  /// element) order (snapshot() output qualifies). The restored set
  /// picks its representation from the snapshot size, independent of
  /// the mode the checkpointed set happened to be in.
  void load_snapshot(const std::vector<Candidate>& items);

  /// Verifies representation invariants, index consistency, the
  /// staircase (non-decreasing hash in key order), and the migration
  /// bounds. Test hook; O(n log n).
  bool check_invariants() const;

  /// Max tree depth in treap mode (1 in flat mode); space diagnostics.
  std::size_t max_depth() const {
    return flat_ ? (count_ > 0 ? 1 : 0) : tree_.max_depth();
  }

  // ---- hybrid introspection (tests and benches) ---------------------
  /// True while the flat ring holds the set.
  bool is_flat() const noexcept { return flat_; }
  /// Migrations performed so far (promotions + demotions).
  std::uint64_t migrations() const noexcept { return migrations_; }
  const HybridConfig& hybrid_config() const noexcept { return hybrid_; }
  /// Storage probes for the zero-steady-state-allocation tests: once
  /// warmed up, churn must leave all three untouched.
  std::size_t ring_capacity() const noexcept { return ring_.size(); }
  std::size_t tree_pool_slots() const noexcept { return tree_.pool_slots(); }
  std::size_t index_capacity() const noexcept { return index_.capacity(); }

 private:
  using Key = SampleKey;

  // ---- flat ring helpers -------------------------------------------
  Candidate& at(std::uint32_t logical) noexcept {
    return ring_[(head_ + logical) & mask_];
  }
  const Candidate& at(std::uint32_t logical) const noexcept {
    return ring_[(head_ + logical) & mask_];
  }
  /// Grows the ring to hold at least `min_cap` tuples, re-basing the
  /// logical order at physical position 0.
  void ring_grow(std::uint32_t min_cap);
  /// Ensures room for one more tuple (doubles and re-bases the ring).
  void ring_reserve_one();
  /// Removes logical positions [from, to), shifting the tail left.
  void ring_remove_range(std::uint32_t from, std::uint32_t to);
  /// Inserts `c` at logical position `pos`, shifting the tail right.
  void ring_insert_at(std::uint32_t pos, const Candidate& c);
  /// Shared flat-mode update; `newest` marks the observe() precondition
  /// (expiry >= everything stored).
  void flat_update(std::uint64_t element, std::uint64_t hash,
                   sim::Slot expiry, bool newest);

  // ---- treap-mode helpers ------------------------------------------
  /// Element stored in pool slot `s` (SlotIndex probe callback).
  std::uint64_t element_at(std::uint32_t slot) const {
    return tree_.key_at(slot).element;
  }
  void tree_update(std::uint64_t element, std::uint64_t hash,
                   sim::Slot expiry, bool newest);
  /// Removes stored tuples dominated by a (hash, expiry) newcomer:
  /// everything with expiry' < expiry and hash' > hash.
  void prune_dominated_by(std::uint64_t hash, sim::Slot expiry);
  /// True iff a stored tuple dominates (hash, expiry): some tuple with
  /// expiry' > expiry and hash' < hash.
  bool is_dominated(std::uint64_t hash, sim::Slot expiry) const;

  // ---- migrations --------------------------------------------------
  void promote();      ///< ring -> treap (size exceeded migrate_up)
  void maybe_demote(); ///< treap -> ring when size() < migrate_down

  void invalidate_front() noexcept { front_fresh_ = false; }

  HybridConfig hybrid_;
  bool flat_;

  // Flat representation: a power-of-two ring, tuples at logical
  // positions [0, count_) in (expiry, hash, element) order.
  std::vector<Candidate> ring_;
  std::uint32_t head_ = 0;
  std::uint32_t count_ = 0;
  std::uint32_t mask_ = 0;

  // Treap representation: payload lives in the key; value unused. The
  // SlotIndex probes resolve through the treap's own node pool.
  Treap<Key, char> tree_;
  SlotIndex index_;

  std::uint64_t migrations_ = 0;

  // Lazily cached front (minimum-hash) candidate for treap mode;
  // refreshed on demand, dropped by any mutation.
  mutable std::optional<Candidate> front_cache_;
  mutable bool front_fresh_ = false;
};

}  // namespace dds::treap
