#include "treap/s_dominance_set.h"

#include <algorithm>
#include <stdexcept>

namespace dds::treap {

namespace {

bool key_less(const Candidate& a, const Candidate& b) noexcept {
  if (a.expiry != b.expiry) return a.expiry < b.expiry;
  if (a.hash != b.hash) return a.hash < b.hash;
  return a.element < b.element;
}

}  // namespace

SDominanceSet::SDominanceSet(std::size_t sample_size) : s_(sample_size) {
  if (sample_size == 0) {
    throw std::invalid_argument("SDominanceSet: sample size must be positive");
  }
}

void SDominanceSet::observe(std::uint64_t element, std::uint64_t hash,
                            sim::Slot expiry) {
  auto it = std::find_if(items_.begin(), items_.end(), [&](const Candidate& c) {
    return c.element == element;
  });
  if (it != items_.end()) {
    if (it->expiry >= expiry) return;
    items_.erase(it);
  }
  const Candidate fresh{element, hash, expiry};
  items_.insert(std::upper_bound(items_.begin(), items_.end(), fresh, key_less),
                fresh);
  prune();
}

void SDominanceSet::insert(std::uint64_t element, std::uint64_t hash,
                           sim::Slot expiry) {
  auto it = std::find_if(items_.begin(), items_.end(), [&](const Candidate& c) {
    return c.element == element;
  });
  if (it != items_.end()) {
    if (it->expiry >= expiry) return;
    items_.erase(it);
  }
  // Reject if already s-dominated by stored tuples.
  std::size_t dominators = 0;
  for (const Candidate& c : items_) {
    if (c.expiry > expiry && c.hash < hash) ++dominators;
  }
  if (dominators >= s_) return;
  const Candidate fresh{element, hash, expiry};
  items_.insert(std::upper_bound(items_.begin(), items_.end(), fresh, key_less),
                fresh);
  prune();
}

void SDominanceSet::expire(sim::Slot now) {
  // Sorted by expiry: expired tuples form a prefix.
  auto first_live = std::find_if(
      items_.begin(), items_.end(),
      [now](const Candidate& c) { return c.expiry > now; });
  items_.erase(items_.begin(), first_live);
}

std::vector<Candidate> SDominanceSet::bottom_s() const {
  std::vector<Candidate> out = items_;
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.hash < b.hash;
  });
  if (out.size() > s_) out.resize(s_);
  return out;
}

std::optional<Candidate> SDominanceSet::min_hash() const {
  if (items_.empty()) return std::nullopt;
  return *std::min_element(
      items_.begin(), items_.end(),
      [](const Candidate& a, const Candidate& b) { return a.hash < b.hash; });
}

bool SDominanceSet::contains(std::uint64_t element) const {
  return std::any_of(items_.begin(), items_.end(), [&](const Candidate& c) {
    return c.element == element;
  });
}

std::vector<Candidate> SDominanceSet::snapshot() const { return items_; }

bool SDominanceSet::check_invariants() const {
  if (!std::is_sorted(items_.begin(), items_.end(), key_less)) return false;
  for (std::size_t i = 0; i < items_.size(); ++i) {
    std::size_t dominators = 0;
    std::size_t same_element = 0;
    for (std::size_t j = 0; j < items_.size(); ++j) {
      if (items_[j].element == items_[i].element) ++same_element;
      if (items_[j].expiry > items_[i].expiry &&
          items_[j].hash < items_[i].hash) {
        ++dominators;
      }
    }
    if (same_element != 1) return false;
    if (dominators >= s_) return false;
  }
  return true;
}

void SDominanceSet::prune() {
  // Single backward sweep over expiry groups: a tuple survives iff fewer
  // than s surviving strictly-later-expiry tuples have a smaller hash.
  // (Counting survivors only is exact: a pruned dominator's own s
  // dominators also dominate anything it dominated.)
  std::vector<std::uint64_t> later_hashes;  // sorted, survivors only
  std::vector<Candidate> kept_reversed;
  kept_reversed.reserve(items_.size());

  std::size_t group_end = items_.size();
  while (group_end > 0) {
    // Identify the equal-expiry group [group_begin, group_end).
    std::size_t group_begin = group_end;
    const sim::Slot expiry = items_[group_end - 1].expiry;
    while (group_begin > 0 && items_[group_begin - 1].expiry == expiry) {
      --group_begin;
    }
    // Judge each group member against strictly-later survivors. Walk the
    // group backwards so the final global reverse restores ascending
    // (expiry, hash) order.
    std::vector<std::uint64_t> group_survivor_hashes;
    for (std::size_t i = group_end; i-- > group_begin;) {
      const auto below = static_cast<std::size_t>(
          std::lower_bound(later_hashes.begin(), later_hashes.end(),
                           items_[i].hash) -
          later_hashes.begin());
      if (below < s_) {
        kept_reversed.push_back(items_[i]);
        group_survivor_hashes.push_back(items_[i].hash);
      }
    }
    // Fold the group's survivors into the later-hash set.
    for (std::uint64_t h : group_survivor_hashes) {
      later_hashes.insert(
          std::lower_bound(later_hashes.begin(), later_hashes.end(), h), h);
    }
    group_end = group_begin;
  }

  if (kept_reversed.size() != items_.size()) {
    std::reverse(kept_reversed.begin(), kept_reversed.end());
    items_ = std::move(kept_reversed);
  }
}

}  // namespace dds::treap
