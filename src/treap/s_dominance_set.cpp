#include "treap/s_dominance_set.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dds::treap {

SDominanceSet::SDominanceSet(std::size_t sample_size, std::uint64_t seed)
    : s_(sample_size),
      by_expiry_(util::mix64(seed ^ 0x65787069727956ULL)),
      by_hash_(util::mix64(seed ^ 0x68617368ULL)) {
  if (sample_size == 0) {
    throw std::invalid_argument("SDominanceSet: sample size must be positive");
  }
}

void SDominanceSet::observe(std::uint64_t element, std::uint64_t hash,
                            sim::Slot expiry) {
  update(element, hash, expiry, /*newest=*/true);
}

void SDominanceSet::insert(std::uint64_t element, std::uint64_t hash,
                           sim::Slot expiry) {
  update(element, hash, expiry, /*newest=*/false);
}

// The dominance sweep. Walk equal-expiry groups in descending expiry
// order, maintaining the s smallest hashes of the strictly-later
// SURVIVORS twice: `w_old_` for the pre-update state (every stored
// tuple survives it, by the standing invariant) and `w_new_` for the
// state with the newcomer virtually inserted. A stored tuple is newly
// prunable iff the working set is full and its hash exceeds
// max(w_new_); the newcomer itself is dominated iff it fails the same
// test at its own position. Correctness of the early exit: pruned
// tuples never appear in any lower position's working set (each has s
// smaller-hash, later-expiry dominators that also precede every lower
// tuple), so the two sets can only differ by the newcomer's hash —
// once w_new_ == w_old_, every judgment below is identical to the
// pre-update state, which satisfied the invariant. Equal-expiry groups
// are judged atomically against the strictly-later working set, then
// folded, matching the "strictly later expiry" dominance rule.
void SDominanceSet::update(std::uint64_t element, std::uint64_t hash,
                           sim::Slot expiry, bool newest) {
  ++stat_updates_;
  const auto at_fn = [this](std::uint32_t s) { return element_at(s); };
  const std::uint32_t slot = index_.find(element, at_fn);
  if (slot != SlotIndex::kNoSlot) {
    const ExpKey old = by_expiry_.key_at(slot);
    if (old.expiry >= expiry) return;  // stored copy is fresher
    erase_tuple(old);
  }

  w_old_.clear();
  w_new_.clear();
  victims_.clear();
  group_.clear();
  bool placed = false;    // newcomer judged at its position?
  bool rejected = false;  // newcomer found s-dominated (insert path)
  bool stop = false;
  sim::Slot group_expiry = 0;
  bool have_group = false;

  const auto fold = [this](std::vector<std::uint64_t>& w, std::uint64_t h) {
    if (w.size() < s_) {
      w.insert(std::upper_bound(w.begin(), w.end(), h), h);
    } else if (h < w.back()) {
      w.pop_back();
      w.insert(std::upper_bound(w.begin(), w.end(), h), h);
    }
  };
  const auto judged_out = [this](std::uint64_t h) {
    return w_new_.size() == s_ && h > w_new_.back();
  };

  // Judges the buffered equal-expiry group against the strictly-later
  // working sets, records victims, then folds the group in.
  const auto close_group = [&]() {
    const bool with_new = !placed && expiry == group_expiry;
    stat_swept_ += group_.size();
    group_victim_.clear();
    for (const Candidate& c : group_) {
      group_victim_.push_back(judged_out(c.hash) ? 1 : 0);
    }
    if (with_new) {
      placed = true;
      if (judged_out(hash)) rejected = true;
    }
    for (std::size_t i = 0; i < group_.size(); ++i) {
      fold(w_old_, group_[i].hash);
      if (group_victim_[i]) {
        victims_.push_back(
            ExpKey{group_[i].expiry, group_[i].hash, group_[i].element});
      } else {
        fold(w_new_, group_[i].hash);
      }
    }
    if (with_new && !rejected) fold(w_new_, hash);
    group_.clear();
    if (rejected || (placed && w_old_ == w_new_)) stop = true;
  };

  by_expiry_.for_each_reverse_while([&](const ExpKey& k, char) {
    if (have_group && k.expiry == group_expiry) {
      group_.push_back(Candidate{k.element, k.hash, k.expiry});
      return true;
    }
    if (have_group) {
      close_group();
      if (stop) return false;
    }
    // The newcomer forms its own virtual group when its expiry falls
    // strictly between the previous group and this key.
    if (!placed && expiry > k.expiry &&
        (!have_group || expiry < group_expiry)) {
      placed = true;
      if (judged_out(hash)) {
        rejected = true;
        stop = true;
        return false;
      }
      fold(w_new_, hash);
      if (w_old_ == w_new_) {  // the hash did not enter the working set
        stop = true;
        return false;
      }
    }
    group_expiry = k.expiry;
    have_group = true;
    group_.push_back(Candidate{k.element, k.hash, k.expiry});
    return true;
  });
  if (!stop) {
    if (have_group) close_group();
    if (!stop && !placed) {
      // The newcomer expires before everything stored.
      placed = true;
      if (judged_out(hash)) rejected = true;
    }
  }

  if (rejected) {
    // Only the coordinator-feedback path may offer a dominated tuple;
    // observe()'s newcomer has the newest expiry, hence no dominators.
    assert(!newest);
    assert(victims_.empty());
    return;
  }
  (void)newest;
  for (const ExpKey& v : victims_) erase_tuple(v);
  const ExpKey key{expiry, hash, element};
  const std::uint32_t fresh = by_expiry_.insert_slot(key, 0);
  index_.insert(element, fresh, at_fn);
  by_hash_.insert(HashKey{hash, element}, expiry);
}

// The batched sweep. Same walk as update(), generalized to n newcomers
// that all carry the batch expiry: where update() folds the single
// newcomer hash into `w_new_` at its placement point, this folds all n
// of them. The placement point is shared (one expiry), so every stored
// group below it is judged against the n-newcomer working set in one
// pass — exactly what n sequential sweeps would converge to, because
// the survivor set is canonical in the live (hash, expiry) multiset
// (equal-expiry tuples never dominate each other, so newcomer order
// cannot matter). Rejection is impossible on this path: dominators need
// strictly later expiry and the batch expiry is the maximum.
void SDominanceSet::observe_group(const std::uint64_t* elements,
                                  const std::uint64_t* hashes, std::size_t n,
                                  sim::Slot expiry) {
  stat_updates_ += n;
  fresh_elems_.clear();
  fresh_hashes_.clear();
  const auto at_fn = [this](std::uint32_t s) { return element_at(s); };
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) index_.prefetch(elements[i + 1]);
    const std::uint32_t slot = index_.find(elements[i], at_fn);
    if (slot != SlotIndex::kNoSlot) {
      const ExpKey old = by_expiry_.key_at(slot);
      if (old.expiry >= expiry) continue;  // stored copy is fresher
      erase_tuple(old);
    } else {
      // In-batch duplicate: its stale copy (if any) is already erased
      // and its fresh copy is pending, so sequential ingest would see a
      // stored copy at this very expiry and no-op. n stays small (the
      // ingest batch width), so a linear scan beats any index here.
      bool dup = false;
      for (const std::uint64_t e : fresh_elems_) dup = dup || e == elements[i];
      if (dup) continue;
    }
    fresh_elems_.push_back(elements[i]);
    fresh_hashes_.push_back(hashes[i]);
  }
  if (fresh_elems_.empty()) return;

  w_old_.clear();
  w_new_.clear();
  victims_.clear();
  group_.clear();
  bool placed = false;
  bool stop = false;
  sim::Slot group_expiry = 0;
  bool have_group = false;

  const auto fold = [this](std::vector<std::uint64_t>& w, std::uint64_t h) {
    if (w.size() < s_) {
      w.insert(std::upper_bound(w.begin(), w.end(), h), h);
    } else if (h < w.back()) {
      w.pop_back();
      w.insert(std::upper_bound(w.begin(), w.end(), h), h);
    }
  };
  const auto judged_out = [this](std::uint64_t h) {
    return w_new_.size() == s_ && h > w_new_.back();
  };
  const auto fold_newcomers = [&]() {
    for (const std::uint64_t h : fresh_hashes_) fold(w_new_, h);
  };

  const auto close_group = [&]() {
    const bool with_new = !placed && expiry == group_expiry;
#ifndef NDEBUG
    // Stored strictly-later survivors cannot dominate a max-expiry
    // newcomer (the observe() precondition) — check before the
    // equal-expiry group folds in.
    if (with_new) {
      for (const std::uint64_t h : fresh_hashes_) assert(!judged_out(h));
    }
#endif
    stat_swept_ += group_.size();
    group_victim_.clear();
    for (const Candidate& c : group_) {
      group_victim_.push_back(judged_out(c.hash) ? 1 : 0);
    }
    if (with_new) placed = true;
    for (std::size_t i = 0; i < group_.size(); ++i) {
      fold(w_old_, group_[i].hash);
      if (group_victim_[i]) {
        victims_.push_back(
            ExpKey{group_[i].expiry, group_[i].hash, group_[i].element});
      } else {
        fold(w_new_, group_[i].hash);
      }
    }
    if (with_new) fold_newcomers();
    group_.clear();
    if (placed && w_old_ == w_new_) stop = true;
  };

  by_expiry_.for_each_reverse_while([&](const ExpKey& k, char) {
    if (have_group && k.expiry == group_expiry) {
      group_.push_back(Candidate{k.element, k.hash, k.expiry});
      return true;
    }
    if (have_group) {
      close_group();
      if (stop) return false;
    }
    if (!placed && expiry > k.expiry &&
        (!have_group || expiry < group_expiry)) {
      placed = true;
      fold_newcomers();
      if (w_old_ == w_new_) {  // no hash entered the working set
        stop = true;
        return false;
      }
    }
    group_expiry = k.expiry;
    have_group = true;
    group_.push_back(Candidate{k.element, k.hash, k.expiry});
    return true;
  });
  if (!stop) {
    if (have_group) close_group();
    if (!placed) fold_newcomers();  // empty set, or everything at `expiry`
  }

  for (const ExpKey& v : victims_) erase_tuple(v);
  for (std::size_t i = 0; i < fresh_elems_.size(); ++i) {
    const ExpKey key{expiry, fresh_hashes_[i], fresh_elems_[i]};
    const std::uint32_t fresh = by_expiry_.insert_slot(key, 0);
    index_.insert(fresh_elems_[i], fresh, at_fn);
    by_hash_.insert(HashKey{fresh_hashes_[i], fresh_elems_[i]}, expiry);
  }
}

void SDominanceSet::erase_tuple(const ExpKey& key) {
  // Index first: its probes read elements out of the by_expiry_ pool,
  // so the slot must still be live.
  const bool unindexed = index_.erase(
      key.element, [this](std::uint32_t s) { return element_at(s); });
  const bool removed = by_expiry_.erase(key);
  const bool unhashed = by_hash_.erase(HashKey{key.hash, key.element});
  assert(unindexed && removed && unhashed);  // the three views must agree
  (void)unindexed;
  (void)removed;
  (void)unhashed;
}

void SDominanceSet::expire(sim::Slot now) {
  // Sorted by expiry: expired tuples are a prefix, detached in bulk.
  // Removals cannot create new dominators, so no re-prune is needed.
  by_expiry_.remove_prefix_while(
      [now](const ExpKey& k, char) { return k.expiry <= now; },
      [this](const ExpKey& k, char) {
        index_.erase(k.element,
                     [this](std::uint32_t s) { return element_at(s); });
        by_hash_.erase(HashKey{k.hash, k.element});
      });
}

std::vector<Candidate> SDominanceSet::bottom_s() const {
  std::vector<Candidate> out;
  bottom_s_into(out);
  return out;
}

void SDominanceSet::bottom_s_into(std::vector<Candidate>& out) const {
  out.clear();
  by_hash_.for_each_while([&](const HashKey& k, const sim::Slot& e) {
    out.push_back(Candidate{k.element, k.hash, e});
    return out.size() < s_;
  });
}

void SDominanceSet::bottom_s_valid_after(sim::Slot min_expiry,
                                         std::vector<Candidate>& out) const {
  bottom_s_valid_after(min_expiry, s_, out);
}

void SDominanceSet::bottom_s_valid_after(sim::Slot min_expiry,
                                         std::size_t count,
                                         std::vector<Candidate>& out) const {
  out.clear();
  if (count == 0) return;
  by_hash_.for_each_while_value_above(
      min_expiry, [&](const HashKey& k, const sim::Slot& e) {
        out.push_back(Candidate{k.element, k.hash, e});
        return out.size() < count;
      });
}

std::optional<Candidate> SDominanceSet::min_hash() const {
  const auto f = by_hash_.front();
  if (!f) return std::nullopt;
  return Candidate{f->first.element, f->first.hash, f->second};
}

std::optional<Candidate> SDominanceSet::kth_smallest(std::size_t k) const {
  const auto e = by_hash_.kth(k);
  if (!e) return std::nullopt;
  return Candidate{e->first.element, e->first.hash, e->second};
}

std::size_t SDominanceSet::hash_rank(std::uint64_t hash) const {
  return by_hash_.rank_of(HashKey{hash, 0});
}

bool SDominanceSet::contains(std::uint64_t element) const {
  return index_.find(element, [this](std::uint32_t s) {
           return element_at(s);
         }) != SlotIndex::kNoSlot;
}

std::vector<Candidate> SDominanceSet::snapshot() const {
  std::vector<Candidate> out;
  out.reserve(by_expiry_.size());
  by_expiry_.for_each([&out](const ExpKey& k, char) {
    out.push_back(Candidate{k.element, k.hash, k.expiry});
  });
  return out;
}

void SDominanceSet::clear() {
  by_expiry_.clear();
  by_hash_.clear();
  index_.clear();
}

void SDominanceSet::load_snapshot(const std::vector<Candidate>& items) {
  clear();
  for (const Candidate& c : items) insert(c.element, c.hash, c.expiry);
}

bool SDominanceSet::check_invariants() const {
  if (!by_expiry_.check_invariants()) return false;
  if (!by_hash_.check_invariants()) return false;
  if (by_expiry_.size() != by_hash_.size()) return false;
  if (by_expiry_.size() != index_.size()) return false;
  const auto items = snapshot();
  const auto at_fn = [this](std::uint32_t s) { return element_at(s); };
  for (std::size_t i = 0; i < items.size(); ++i) {
    std::size_t dominators = 0;
    std::size_t same_element = 0;
    for (std::size_t j = 0; j < items.size(); ++j) {
      if (items[j].element == items[i].element) ++same_element;
      if (items[j].expiry > items[i].expiry &&
          items[j].hash < items[i].hash) {
        ++dominators;
      }
    }
    if (same_element != 1) return false;
    if (dominators >= s_) return false;
    // Cross-structure agreement, tuple by tuple.
    const std::uint32_t slot = index_.find(items[i].element, at_fn);
    if (slot == SlotIndex::kNoSlot) return false;
    const ExpKey& stored = by_expiry_.key_at(slot);
    if (stored.expiry != items[i].expiry || stored.hash != items[i].hash ||
        stored.element != items[i].element) {
      return false;
    }
    const sim::Slot* expiry =
        by_hash_.find(HashKey{items[i].hash, items[i].element});
    if (expiry == nullptr || *expiry != items[i].expiry) return false;
  }
  return true;
}

}  // namespace dds::treap
