// SDominanceSet — the bottom-s generalization of the dominance set.
//
// The paper handles window sample sizes s > 1 by running s independent
// copies of the single-sample protocol (a with-replacement sample; see
// multi_sliding.h). This module implements the WITHOUT-replacement
// alternative the thesis leaves as "straightforward": maintain, per
// site, every tuple that could still belong to the bottom-s of some
// current or future window.
//
// Generalized dominance: a tuple (e, t) is prunable iff at least s
// tuples (e', t') with t' > t and h(e') < h(e) exist — then e can never
// again be among the s smallest in-window hashes (its s dominators all
// outlive it). For s = 1 this degenerates to DominanceSet's rule.
//
// Two structural facts keep maintenance cheap:
//   * a dominator always expires after its dominated tuple, so counts
//     of live dominators never decrease through expiry;
//   * if a dominator is itself prunable, the dominated tuple already
//     has s other (smaller-hash, later-expiry) dominators, so pruning
//     order cannot strand an unprunable tuple.
// The expected size is O(s(1 + log(M/s))) for M distinct in-window
// elements (the bottom-s analogue of Lemma 10), so this implementation
// stores tuples in a flat expiry-sorted vector and pays an O(|T|) scan
// per update — tiny in practice and trivially correct; the fuzz suite
// checks it against an O(n^2) reference.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "treap/dominance_set.h"

namespace dds::treap {

class SDominanceSet {
 public:
  explicit SDominanceSet(std::size_t sample_size);

  /// Fresh arrival with the newest expiry (>= everything stored).
  /// Refreshes the tuple if the element is already tracked, then prunes
  /// every tuple that acquired its s-th dominator.
  void observe(std::uint64_t element, std::uint64_t hash, sim::Slot expiry);

  /// Arbitrary-expiry insert (coordinator feedback). No-op if the tuple
  /// itself is already s-dominated.
  void insert(std::uint64_t element, std::uint64_t hash, sim::Slot expiry);

  /// Drops tuples with expiry <= now.
  void expire(sim::Slot now);

  /// The up-to-s smallest-hash candidates, hash-ascending.
  std::vector<Candidate> bottom_s() const;

  /// Smallest-hash candidate (convenience; == bottom_s().front()).
  std::optional<Candidate> min_hash() const;

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  std::size_t sample_size() const noexcept { return s_; }
  bool contains(std::uint64_t element) const;

  /// All tuples in (expiry, hash, element) order.
  std::vector<Candidate> snapshot() const;

  /// Checks that no stored tuple is s-dominated and that every stored
  /// element is unique. O(n^2) test hook.
  bool check_invariants() const;

 private:
  /// Removes every tuple with >= s strictly-later-expiry smaller-hash
  /// dominators. O(n log n).
  void prune();

  std::size_t s_;
  std::vector<Candidate> items_;  // kept sorted by (expiry, hash, element)
};

}  // namespace dds::treap
