// SDominanceSet — the bottom-s generalization of the dominance set, on
// the pooled order-statistic treap.
//
// The paper handles window sample sizes s > 1 by running s independent
// copies of the single-sample protocol (a with-replacement sample; see
// multi_sliding.h). This module implements the WITHOUT-replacement
// alternative the thesis leaves as "straightforward": maintain, per
// site, every tuple that could still belong to the bottom-s of some
// current or future window.
//
// Generalized dominance: a tuple (e, t) is prunable iff at least s
// tuples (e', t') with t' > t and h(e') < h(e) exist — then e can never
// again be among the s smallest in-window hashes (its s dominators all
// outlive it). For s = 1 this degenerates to DominanceSet's rule.
//
// Representation. Two pooled treaps over the same logical tuple set:
//
//   * `by_expiry_` — keyed (expiry, hash, element). Window expiry is a
//     bulk prefix detach, O(log n + expired); the dominance sweep walks
//     it in descending key order.
//   * `by_hash_`  — keyed (hash, element), valued by expiry. Because
//     the pooled treap maintains subtree sizes, this is an
//     order-statistic tree: bottom_s() reads the first s entries
//     straight off an in-order walk (O(log n + s), already
//     hash-ascending — no snapshot copy, no sort), kth_smallest() and
//     hash_rank() answer rank queries in O(log n).
//
// A SlotIndex (open addressing over by_expiry_'s pool slots) replaces
// the former O(|T|) linear scan for duplicate refresh.
//
// Updates use an early-terminating dominance sweep instead of the old
// full O(|T| log |T|) re-prune: walk equal-expiry groups in descending
// expiry order, maintaining the s smallest later-survivor hashes twice
// — once for the pre-update state (W_old), once with the newcomer
// virtually inserted (W_new). A tuple is newly prunable iff it fails
// against W_new; the instant W_new == W_old every judgment below is
// unchanged from the pre-update state (which satisfied the invariant),
// so the sweep stops. The newcomer's hash falls out of the working set
// after s smaller later hashes have been seen, so sweeps are short in
// practice — the abl7 bench measures tuples-swept-per-update staying
// sublinear in |T| (docs/substrates.md).
//
// The expected size is O(s(1 + log(M/s))) for M distinct in-window
// elements (the bottom-s analogue of Lemma 10). The fuzz suite checks
// behaviour against an O(n^2) reference.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "treap/dominance_set.h"
#include "treap/slot_index.h"
#include "treap/treap.h"

namespace dds::treap {

/// The bottom-s candidate set: every tuple that could still belong to
/// the bottom-s of some current or future window (a tuple dies once s
/// later-expiring, smaller-hash tuples exist). Two pooled treaps —
/// by-expiry for expiry/sweeps, by-hash as an order-statistic tree for
/// bottom-s and rank queries — plus a SlotIndex for duplicate refresh.
class SDominanceSet {
 public:
  /// `sample_size` is s (> 0, throws std::invalid_argument otherwise);
  /// `seed` salts the treap priorities.
  explicit SDominanceSet(std::size_t sample_size,
                         std::uint64_t seed = 0x73646f6dULL);

  /// Fresh arrival with the newest expiry (>= everything stored).
  /// Refreshes the tuple if the element is already tracked, then prunes
  /// every tuple that acquired its s-th dominator.
  void observe(std::uint64_t element, std::uint64_t hash, sim::Slot expiry);

  /// Arbitrary-expiry insert (coordinator feedback). No-op if the tuple
  /// itself is already s-dominated.
  void insert(std::uint64_t element, std::uint64_t hash, sim::Slot expiry);

  /// Drops tuples with expiry <= now. O(log n + expired).
  void expire(sim::Slot now);

  /// The up-to-s smallest-hash candidates, hash-ascending: the first s
  /// entries of the order-statistic tree, O(log n + s). (Historically
  /// this copied the full snapshot and sorted it.)
  std::vector<Candidate> bottom_s() const;

  /// Appends the bottom-s into `out` (cleared first) without returning
  /// a fresh vector — the allocation-free variant for per-slot callers.
  void bottom_s_into(std::vector<Candidate>& out) const;

  /// Smallest-hash candidate (== bottom_s().front()); O(log n).
  std::optional<Candidate> min_hash() const;

  /// The k-th smallest-hash candidate (0-based), or nullopt if
  /// k >= size(). O(log n) via subtree sizes.
  std::optional<Candidate> kth_smallest(std::size_t k) const;

  /// Number of stored tuples with hash strictly below `hash`. O(log n).
  std::size_t hash_rank(std::uint64_t hash) const;

  std::size_t size() const noexcept { return by_expiry_.size(); }
  bool empty() const noexcept { return by_expiry_.empty(); }
  std::size_t sample_size() const noexcept { return s_; }
  bool contains(std::uint64_t element) const;

  /// All tuples in (expiry, hash, element) order.
  std::vector<Candidate> snapshot() const;

  /// Drops every stored tuple (the statistics counters survive).
  void clear();

  /// Rebuilds this set from a snapshot() image — the checkpoint/restore
  /// path (core/checkpoint.h). `items` need not be ordered: insert()
  /// keeps the freshest expiry per element and no tuple of a valid
  /// snapshot is s-dominated by the others, so loading in any order
  /// reproduces the snapshotted set.
  void load_snapshot(const std::vector<Candidate>& items);

  /// Checks that no stored tuple is s-dominated, elements are unique,
  /// and the two treaps + slot index agree tuple for tuple. O(n^2)
  /// test hook.
  bool check_invariants() const;

  // ---- instrumentation (abl7 sublinearity rows) ---------------------
  /// Stored tuples examined by dominance sweeps so far; divide by
  /// updates() for the mean per-update sweep length.
  std::uint64_t swept_tuples() const noexcept { return stat_swept_; }
  /// observe()/insert() calls so far.
  std::uint64_t updates() const noexcept { return stat_updates_; }

 private:
  using ExpKey = SampleKey;

  struct HashKey {
    std::uint64_t hash;
    std::uint64_t element;

    friend bool operator<(const HashKey& a, const HashKey& b) noexcept {
      if (a.hash != b.hash) return a.hash < b.hash;
      return a.element < b.element;
    }
  };

  std::uint64_t element_at(std::uint32_t slot) const {
    return by_expiry_.key_at(slot).element;
  }

  /// Shared observe/insert body; `newest` marks observe()'s
  /// max-expiry precondition (its newcomer can never be dominated).
  void update(std::uint64_t element, std::uint64_t hash, sim::Slot expiry,
              bool newest);

  /// Removes one tuple from both treaps and the index.
  void erase_tuple(const ExpKey& key);

  std::size_t s_;
  Treap<ExpKey, char> by_expiry_;
  Treap<HashKey, sim::Slot> by_hash_;  ///< value: the tuple's expiry
  SlotIndex index_;                    ///< element -> by_expiry_ slot

  // Sweep scratch, reused across updates (allocation-free steady state).
  std::vector<std::uint64_t> w_old_;      ///< s smallest later hashes, pre-update
  std::vector<std::uint64_t> w_new_;      ///< same, with the newcomer inserted
  std::vector<Candidate> group_;          ///< current equal-expiry group
  std::vector<unsigned char> group_victim_;
  std::vector<ExpKey> victims_;

  std::uint64_t stat_swept_ = 0;
  std::uint64_t stat_updates_ = 0;
};

}  // namespace dds::treap
