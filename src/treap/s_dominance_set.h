// SDominanceSet — the bottom-s generalization of the dominance set, on
// the pooled order-statistic treap.
//
// The paper handles window sample sizes s > 1 by running s independent
// copies of the single-sample protocol (a with-replacement sample; see
// multi_sliding.h). This module implements the WITHOUT-replacement
// alternative the thesis leaves as "straightforward": maintain, per
// site, every tuple that could still belong to the bottom-s of some
// current or future window.
//
// Generalized dominance: a tuple (e, t) is prunable iff at least s
// tuples (e', t') with t' > t and h(e') < h(e) exist — then e can never
// again be among the s smallest in-window hashes (its s dominators all
// outlive it). For s = 1 this degenerates to DominanceSet's rule.
//
// Representation. Two pooled treaps over the same logical tuple set:
//
//   * `by_expiry_` — keyed (expiry, hash, element). Window expiry is a
//     bulk prefix detach, O(log n + expired); the dominance sweep walks
//     it in descending key order.
//   * `by_hash_`  — keyed (hash, element), valued by expiry. Because
//     the pooled treap maintains subtree sizes, this is an
//     order-statistic tree: bottom_s() reads the first s entries
//     straight off an in-order walk (O(log n + s), already
//     hash-ascending — no snapshot copy, no sort), kth_smallest() and
//     hash_rank() answer rank queries in O(log n).
//
// A SlotIndex (open addressing over by_expiry_'s pool slots) replaces
// the former O(|T|) linear scan for duplicate refresh.
//
// Updates use an early-terminating dominance sweep instead of the old
// full O(|T| log |T|) re-prune: walk equal-expiry groups in descending
// expiry order, maintaining the s smallest later-survivor hashes twice
// — once for the pre-update state (W_old), once with the newcomer
// virtually inserted (W_new). A tuple is newly prunable iff it fails
// against W_new; the instant W_new == W_old every judgment below is
// unchanged from the pre-update state (which satisfied the invariant),
// so the sweep stops. The newcomer's hash falls out of the working set
// after s smaller later hashes have been seen, so sweeps are short in
// practice — the abl7 bench measures tuples-swept-per-update staying
// sublinear in |T| (docs/substrates.md).
//
// The expected size is O(s(1 + log(M/s))) for M distinct in-window
// elements (the bottom-s analogue of Lemma 10). The fuzz suite checks
// behaviour against an O(n^2) reference.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "treap/dominance_set.h"
#include "treap/slot_index.h"
#include "treap/treap.h"

namespace dds::treap {

/// The bottom-s candidate set: every tuple that could still belong to
/// the bottom-s of some current or future window (a tuple dies once s
/// later-expiring, smaller-hash tuples exist). Two pooled treaps —
/// by-expiry for expiry/sweeps, by-hash as an order-statistic tree for
/// bottom-s and rank queries — plus a SlotIndex for duplicate refresh.
class SDominanceSet {
 public:
  /// `sample_size` is s (> 0, throws std::invalid_argument otherwise);
  /// `seed` salts the treap priorities.
  explicit SDominanceSet(std::size_t sample_size,
                         std::uint64_t seed = 0x73646f6dULL);

  /// Fresh arrival with the newest expiry (>= everything stored).
  /// Refreshes the tuple if the element is already tracked, then prunes
  /// every tuple that acquired its s-th dominator.
  void observe(std::uint64_t element, std::uint64_t hash, sim::Slot expiry);

  /// Arbitrary-expiry insert (coordinator feedback). No-op if the tuple
  /// itself is already s-dominated.
  void insert(std::uint64_t element, std::uint64_t hash, sim::Slot expiry);

  /// Batched observe: `n` fresh arrivals sharing one `expiry` (one
  /// ingest batch at slot t has expiry t + W, which must be >= every
  /// stored expiry — the same precondition as observe()). Produces the
  /// EXACT state per-element observe() calls would: the s-dominance
  /// survivor set is canonical in the live (hash, expiry) multiset, so
  /// stale-copy refreshes, in-batch duplicates (second copy is the same
  /// no-op as sequentially), and victim pruning all land identically.
  /// The win is structural: the newcomers share an expiry, so ONE
  /// descending-expiry dominance sweep judges victims against all n
  /// hashes at once instead of re-walking the same groups n times —
  /// the sweep cost of the longest single newcomer, not the sum.
  void observe_group(const std::uint64_t* elements,
                     const std::uint64_t* hashes, std::size_t n,
                     sim::Slot expiry);

  /// Drops tuples with expiry <= now. O(log n + expired).
  void expire(sim::Slot now);

  /// The up-to-s smallest-hash candidates, hash-ascending: the first s
  /// entries of the order-statistic tree, O(log n + s). (Historically
  /// this copied the full snapshot and sorted it.)
  std::vector<Candidate> bottom_s() const;

  /// Appends the bottom-s into `out` (cleared first) without returning
  /// a fresh vector — the allocation-free variant for per-slot callers.
  void bottom_s_into(std::vector<Candidate>& out) const;

  /// Multi-width query: the up-to-`count` smallest-hash candidates among
  /// tuples with expiry strictly greater than `min_expiry`, appended to
  /// `out` (cleared first), hash-ascending. With tuples keyed at width W
  /// and `min_expiry = now + (W - w)`, this is the bottom-s of the
  /// narrower window w: any tuple of the w-window's true bottom-s has
  /// fewer than s smaller-hash tuples expiring later (those would be in
  /// the w-window too), so it survives s-dominance pruning at W and is
  /// stored here. Served by the by-hash treap's max-expiry aggregate —
  /// subtrees holding no tuple valid at w are skipped — in expected
  /// O(log n + count). Allocation-free once `out` has capacity.
  void bottom_s_valid_after(sim::Slot min_expiry,
                            std::vector<Candidate>& out) const;
  void bottom_s_valid_after(sim::Slot min_expiry, std::size_t count,
                            std::vector<Candidate>& out) const;

  /// Smallest-hash candidate (== bottom_s().front()); O(log n).
  std::optional<Candidate> min_hash() const;

  /// The k-th smallest-hash candidate (0-based), or nullopt if
  /// k >= size(). O(log n) via subtree sizes.
  std::optional<Candidate> kth_smallest(std::size_t k) const;

  /// Number of stored tuples with hash strictly below `hash`. O(log n).
  std::size_t hash_rank(std::uint64_t hash) const;

  std::size_t size() const noexcept { return by_expiry_.size(); }
  bool empty() const noexcept { return by_expiry_.empty(); }
  std::size_t sample_size() const noexcept { return s_; }
  bool contains(std::uint64_t element) const;

  /// Prefetch hint for the batched ingest pipeline: pulls the lines the
  /// next observe(element, ...) touches first (index probe line + the
  /// by-expiry root).
  void prefetch(std::uint64_t element) const noexcept {
    index_.prefetch(element);
    by_expiry_.prefetch_root();
  }

  /// Bytes reserved by both treap pools, the index, and the sweep
  /// scratch; footprint accounting for the multi-tenant comparison.
  std::size_t footprint_bytes() const noexcept {
    return by_expiry_.pool_bytes() + by_hash_.pool_bytes() +
           index_.table_bytes() +
           w_old_.capacity() * sizeof(std::uint64_t) +
           w_new_.capacity() * sizeof(std::uint64_t) +
           group_.capacity() * sizeof(Candidate) +
           group_victim_.capacity() +
           victims_.capacity() * sizeof(ExpKey) +
           (fresh_elems_.capacity() + fresh_hashes_.capacity()) *
               sizeof(std::uint64_t);
  }

  /// All tuples in (expiry, hash, element) order.
  std::vector<Candidate> snapshot() const;

  /// Drops every stored tuple (the statistics counters survive).
  void clear();

  /// Rebuilds this set from a snapshot() image — the checkpoint/restore
  /// path (core/checkpoint.h). `items` need not be ordered: insert()
  /// keeps the freshest expiry per element and no tuple of a valid
  /// snapshot is s-dominated by the others, so loading in any order
  /// reproduces the snapshotted set.
  void load_snapshot(const std::vector<Candidate>& items);

  /// Checks that no stored tuple is s-dominated, elements are unique,
  /// and the two treaps + slot index agree tuple for tuple. O(n^2)
  /// test hook.
  bool check_invariants() const;

  // ---- instrumentation (abl7 sublinearity rows) ---------------------
  /// Stored tuples examined by dominance sweeps so far; divide by
  /// updates() for the mean per-update sweep length.
  std::uint64_t swept_tuples() const noexcept { return stat_swept_; }
  /// observe()/insert() calls so far.
  std::uint64_t updates() const noexcept { return stat_updates_; }

 private:
  using ExpKey = SampleKey;

  struct HashKey {
    std::uint64_t hash;
    std::uint64_t element;

    friend bool operator<(const HashKey& a, const HashKey& b) noexcept {
      if (a.hash != b.hash) return a.hash < b.hash;
      return a.element < b.element;
    }
  };

  std::uint64_t element_at(std::uint32_t slot) const {
    return by_expiry_.key_at(slot).element;
  }

  /// Shared observe/insert body; `newest` marks observe()'s
  /// max-expiry precondition (its newcomer can never be dominated).
  void update(std::uint64_t element, std::uint64_t hash, sim::Slot expiry,
              bool newest);

  /// Removes one tuple from both treaps and the index.
  void erase_tuple(const ExpKey& key);

  std::size_t s_;
  Treap<ExpKey, char> by_expiry_;
  /// Value: the tuple's expiry. MaxAgg maintains each subtree's max
  /// expiry, which bottom_s_valid_after uses to skip subtrees with no
  /// tuple valid at the queried width.
  Treap<HashKey, sim::Slot, std::less<HashKey>, /*MaxAgg=*/true> by_hash_;
  SlotIndex index_;                    ///< element -> by_expiry_ slot

  // Sweep scratch, reused across updates (allocation-free steady state).
  std::vector<std::uint64_t> w_old_;      ///< s smallest later hashes, pre-update
  std::vector<std::uint64_t> w_new_;      ///< same, with the newcomer inserted
  std::vector<Candidate> group_;          ///< current equal-expiry group
  std::vector<unsigned char> group_victim_;
  std::vector<ExpKey> victims_;
  std::vector<std::uint64_t> fresh_elems_;   ///< observe_group survivors
  std::vector<std::uint64_t> fresh_hashes_;  ///< of the stale/dup filter

  std::uint64_t stat_swept_ = 0;
  std::uint64_t stat_updates_ = 0;
};

}  // namespace dds::treap
