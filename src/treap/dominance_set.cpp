#include "treap/dominance_set.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace dds::treap {

namespace {

constexpr std::uint64_t kU64Min = 0;

std::uint32_t next_pow2(std::uint32_t v) {
  std::uint32_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

DominanceSet::DominanceSet(std::uint64_t seed, HybridConfig hybrid)
    : hybrid_(hybrid), tree_(seed) {
  if (hybrid_.migrate_up == 0) {
    hybrid_.migrate_down = 0;  // pure-treap mode: never demote
  } else if (hybrid_.migrate_down >= hybrid_.migrate_up) {
    hybrid_.migrate_down = hybrid_.migrate_up / 2;
  }
  flat_ = hybrid_.migrate_up > 0;
  if (flat_) [[likely]] {
    // Sized for the hysteresis band up front (capped: very large
    // migrate_up — the pure-flat ablation — grows on demand instead).
    const std::uint32_t cap =
        next_pow2(std::min<std::uint32_t>(
            std::max(hybrid_.migrate_up, hybrid_.migrate_down) + 1, 256));
    ring_.resize(cap);
    mask_ = cap - 1;
  }
}

// ------------------------------------------------------------ flat ring --

void DominanceSet::ring_grow(std::uint32_t min_cap) {
  std::uint32_t cap = ring_.empty() ? 8 : static_cast<std::uint32_t>(ring_.size());
  while (cap < min_cap) cap <<= 1;
  std::vector<Candidate> fresh(cap);
  for (std::uint32_t l = 0; l < count_; ++l) fresh[l] = at(l);
  ring_ = std::move(fresh);
  head_ = 0;
  mask_ = cap - 1;
}

void DominanceSet::ring_reserve_one() {
  if (count_ + 1 > ring_.size()) {
    ring_grow(count_ + 1);
  }
}

void DominanceSet::ring_remove_range(std::uint32_t from, std::uint32_t to) {
  if (from >= to) return;
  const std::uint32_t removed = to - from;
  for (std::uint32_t i = to; i < count_; ++i) {
    at(i - removed) = at(i);
  }
  count_ -= removed;
}

void DominanceSet::ring_insert_at(std::uint32_t pos, const Candidate& c) {
  ring_reserve_one();
  for (std::uint32_t i = count_; i > pos; --i) {
    at(i) = at(i - 1);
  }
  at(pos) = c;
  ++count_;
}

void DominanceSet::flat_update(std::uint64_t element, std::uint64_t hash,
                               sim::Slot expiry, bool newest) {
  // Duplicate refresh: the newest expiry wins, older info is a no-op.
  for (std::uint32_t l = 0; l < count_; ++l) {
    if (at(l).element == element) {
      if (at(l).expiry >= expiry) return;
      ring_remove_range(l, l + 1);
      break;
    }
  }
  if (newest) {
    // observe(): arrivals carry the newest timestamp, so the newcomer
    // cannot be dominated.
    assert(count_ == 0 || at(count_ - 1).expiry <= expiry);
  } else {
    // insert(): reject if a stored tuple dominates the newcomer. The
    // suffix with expiry' > expiry starts at p2; by the staircase its
    // smallest hash sits at its front.
    std::uint32_t p2 = count_;
    while (p2 > 0 && at(p2 - 1).expiry > expiry) --p2;
    if (p2 < count_ && at(p2).hash < hash) return;
  }
  // Prune what the newcomer dominates: within the prefix of strictly
  // earlier expiries (ending at p), the staircase makes the hash' > hash
  // victims a contiguous run [v, p) — one bulk shift removes them all.
  std::uint32_t p = count_;
  while (p > 0 && at(p - 1).expiry >= expiry) --p;
  std::uint32_t v = p;
  while (v > 0 && at(v - 1).hash > hash) --v;
  ring_remove_range(v, p);
  // Insert in key order; everything before v is strictly smaller.
  const Candidate c{element, hash, expiry};
  std::uint32_t q = v;
  while (q < count_ && sample_key_less(at(q), c)) ++q;
  ring_insert_at(q, c);
  if (count_ > hybrid_.migrate_up) promote();
}

// ----------------------------------------------------------- treap mode --

void DominanceSet::tree_update(std::uint64_t element, std::uint64_t hash,
                               sim::Slot expiry, bool newest) {
  const auto at_fn = [this](std::uint32_t s) { return element_at(s); };
  const std::uint32_t slot = index_.find(element, at_fn);
  if (slot != SlotIndex::kNoSlot) {
    const Key old = tree_.key_at(slot);
    if (old.expiry >= expiry) return;
    const bool unindexed = index_.erase(element, at_fn);
    const bool removed = tree_.erase(old);
    assert(unindexed && removed);  // index and tree must agree per element
    (void)unindexed;
    (void)removed;
    invalidate_front();
  }
  if (newest) {
    assert(!is_dominated(hash, expiry));
  } else if (is_dominated(hash, expiry)) {
    maybe_demote();  // the refresh removal above may have shrunk the set
    return;
  }
  prune_dominated_by(hash, expiry);
  const Key key{expiry, hash, element};
  const std::uint32_t fresh = tree_.insert_slot(key, 0);
  index_.insert(element, fresh, at_fn);
  invalidate_front();
  maybe_demote();
}

void DominanceSet::prune_dominated_by(std::uint64_t hash, sim::Slot expiry) {
  // Dominated tuples have expiry' < expiry and hash' > hash. Tuples with
  // expiry' < expiry are exactly the keys below (expiry, 0, 0); by the
  // staircase those among them with hash' > hash form a suffix, which
  // the fused treap operation detaches without leaving the node pool.
  tree_.remove_suffix_of_lower_while(
      Key{expiry, kU64Min, kU64Min},
      [hash](const Key& k, char) { return k.hash > hash; },
      [this](const Key& k, char) {
        index_.erase(k.element,
                     [this](std::uint32_t s) { return element_at(s); });
        invalidate_front();
      });
}

bool DominanceSet::is_dominated(std::uint64_t hash, sim::Slot expiry) const {
  // A dominating tuple has expiry' > expiry and hash' < hash. Keys with
  // expiry' > expiry form a suffix whose minimum hash sits at its front
  // (staircase), which lower_bound finds directly.
  if (expiry == std::numeric_limits<sim::Slot>::max()) return false;
  auto lb = tree_.lower_bound_key(Key{expiry + 1, kU64Min, kU64Min});
  return lb.has_value() && lb->hash < hash;
}

// ----------------------------------------------------------- migrations --

void DominanceSet::promote() {
  const auto at_fn = [this](std::uint32_t s) { return element_at(s); };
  for (std::uint32_t l = 0; l < count_; ++l) {
    const Candidate& c = at(l);
    const std::uint32_t slot =
        tree_.insert_slot(Key{c.expiry, c.hash, c.element}, 0);
    index_.insert(c.element, slot, at_fn);
  }
  head_ = 0;
  count_ = 0;
  flat_ = false;
  ++migrations_;
  invalidate_front();
}

void DominanceSet::maybe_demote() {
  if (flat_ || tree_.size() >= hybrid_.migrate_down) return;
  const auto n = static_cast<std::uint32_t>(tree_.size());
  if (ring_.size() < n + 1u) ring_grow(n + 1);
  head_ = 0;
  std::uint32_t l = 0;
  tree_.for_each([&](const Key& k, char) {
    ring_[l++] = Candidate{k.element, k.hash, k.expiry};
  });
  count_ = l;
  tree_.clear();   // keeps the pool's storage; next promote reuses it
  index_.clear();  // same for the probe table
  flat_ = true;
  ++migrations_;
  invalidate_front();
}

// ----------------------------------------------------------- public API --

void DominanceSet::observe(std::uint64_t element, std::uint64_t hash,
                           sim::Slot expiry) {
  if (flat_) [[likely]] {
    flat_update(element, hash, expiry, /*newest=*/true);
  } else {
    tree_update(element, hash, expiry, /*newest=*/true);
  }
}

void DominanceSet::insert(std::uint64_t element, std::uint64_t hash,
                          sim::Slot expiry) {
  if (flat_) [[likely]] {
    flat_update(element, hash, expiry, /*newest=*/false);
  } else {
    tree_update(element, hash, expiry, /*newest=*/false);
  }
}

void DominanceSet::expire(sim::Slot now) {
  if (flat_) [[likely]] {
    // Expired tuples are a prefix; dropping them is a head advance.
    while (count_ > 0 && at(0).expiry <= now) {
      head_ = (head_ + 1) & mask_;
      --count_;
    }
    return;
  }
  tree_.remove_prefix_while(
      [now](const Key& k, char) { return k.expiry <= now; },
      [this](const Key& k, char) {
        index_.erase(k.element,
                     [this](std::uint32_t s) { return element_at(s); });
        invalidate_front();
      });
  maybe_demote();
}

std::optional<Candidate> DominanceSet::min_hash() const {
  if (flat_) [[likely]] {
    if (count_ == 0) return std::nullopt;
    return at(0);
  }
  if (!front_fresh_) {
    front_cache_.reset();
    if (const auto f = tree_.front()) {
      front_cache_ = Candidate{f->first.element, f->first.hash,
                               f->first.expiry};
    }
    front_fresh_ = true;
  }
  return front_cache_;
}

std::optional<Candidate> DominanceSet::min_hash_valid_after(
    sim::Slot min_expiry) const {
  if (min_expiry == std::numeric_limits<sim::Slot>::max()) return std::nullopt;
  if (flat_) [[likely]] {
    // Logical positions are (expiry, hash, element)-sorted, so the tuples
    // with expiry > min_expiry form a suffix; its first tuple is the
    // minimum hash among them (staircase).
    std::uint32_t lo = 0;
    std::uint32_t hi = count_;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (at(mid).expiry <= min_expiry) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == count_) return std::nullopt;
    return at(lo);
  }
  const auto lb = tree_.lower_bound_key(Key{min_expiry + 1, kU64Min, kU64Min});
  if (!lb) return std::nullopt;
  return Candidate{lb->element, lb->hash, lb->expiry};
}

bool DominanceSet::contains(std::uint64_t element) const {
  if (flat_) [[likely]] {
    for (std::uint32_t l = 0; l < count_; ++l) {
      if (at(l).element == element) return true;
    }
    return false;
  }
  return index_.find(element, [this](std::uint32_t s) {
           return element_at(s);
         }) != SlotIndex::kNoSlot;
}

std::vector<Candidate> DominanceSet::snapshot() const {
  std::vector<Candidate> out;
  out.reserve(size());
  if (flat_) [[likely]] {
    for (std::uint32_t l = 0; l < count_; ++l) out.push_back(at(l));
    return out;
  }
  tree_.for_each([&out](const Key& k, char) {
    out.push_back(Candidate{k.element, k.hash, k.expiry});
  });
  return out;
}

void DominanceSet::load_snapshot(const std::vector<Candidate>& items) {
  tree_.clear();
  index_.clear();
  head_ = 0;
  count_ = 0;
  invalidate_front();
  flat_ = hybrid_.migrate_up > 0 && items.size() <= hybrid_.migrate_up;
  if (flat_) [[likely]] {
    const auto n = static_cast<std::uint32_t>(items.size());
    if (ring_.size() < n + 1u) ring_grow(n + 1);
    for (std::uint32_t l = 0; l < n; ++l) ring_[l] = items[l];
    count_ = n;
    return;
  }
  const auto at_fn = [this](std::uint32_t s) { return element_at(s); };
  for (const Candidate& c : items) {
    const std::uint32_t slot =
        tree_.insert_slot(Key{c.expiry, c.hash, c.element}, 0);
    index_.insert(c.element, slot, at_fn);
  }
}

bool DominanceSet::check_invariants() const {
  if (flat_) [[likely]] {
    if (!tree_.empty() || !index_.empty()) return false;
    if (count_ > hybrid_.migrate_up) return false;
    for (std::uint32_t l = 0; l < count_; ++l) {
      const Candidate& c = at(l);
      if (l > 0) {
        const Candidate& prev = at(l - 1);
        if (!sample_key_less(prev, c)) return false;  // strict key order
        if (c.hash < prev.hash) return false;       // staircase
      }
      for (std::uint32_t m = l + 1; m < count_; ++m) {
        if (at(m).element == c.element) return false;  // unique elements
      }
    }
    return true;
  }
  if (!tree_.check_invariants()) return false;
  if (tree_.size() != index_.size()) return false;
  if (tree_.size() < hybrid_.migrate_down) return false;  // missed demotion
  // Staircase: in (expiry, hash) key order, hashes are non-decreasing;
  // every key must be indexed at its own pool slot.
  bool ok = true;
  bool have_prev = false;
  Candidate prev{};
  const auto at_fn = [this](std::uint32_t s) { return element_at(s); };
  tree_.for_each([&](const Key& k, char) {
    const Candidate cur{k.element, k.hash, k.expiry};
    if (have_prev && cur.hash < prev.hash) ok = false;
    const std::uint32_t slot = index_.find(k.element, at_fn);
    if (slot == SlotIndex::kNoSlot) {
      ok = false;
    } else {
      const Key& stored = tree_.key_at(slot);
      if (stored.expiry != k.expiry || stored.hash != k.hash ||
          stored.element != k.element) {
        ok = false;
      }
    }
    prev = cur;
    have_prev = true;
  });
  // The cached front must agree with the tree (min_hash() refreshes a
  // stale cache, so this catches missed invalidations only).
  const auto cached = min_hash();
  const auto f = tree_.front();
  if (cached.has_value() != f.has_value()) return false;
  if (cached && (cached->element != f->first.element ||
                 cached->hash != f->first.hash ||
                 cached->expiry != f->first.expiry)) {
    return false;
  }
  return ok;
}

}  // namespace dds::treap
