#include "treap/dominance_set.h"

#include <cassert>
#include <limits>

namespace dds::treap {

namespace {
constexpr std::uint64_t kU64Min = 0;
}

void DominanceSet::observe(std::uint64_t element, std::uint64_t hash,
                           sim::Slot expiry) {
  auto it = index_.find(element);
  if (it != index_.end()) {
    if (it->second.expiry >= expiry) return;  // nothing newer to record
    erase_key(it->second);
    index_.erase(it);
  }
  // Arrivals carry the newest timestamp in the stream, so the newcomer
  // cannot be dominated; it may dominate earlier tuples.
  assert(!is_dominated(hash, expiry));
  prune_dominated_by(hash, expiry);
  const Key key{expiry, hash, element};
  tree_.insert(key, 0);
  index_.emplace(element, key);
  invalidate_front();
}

void DominanceSet::insert(std::uint64_t element, std::uint64_t hash,
                          sim::Slot expiry) {
  auto it = index_.find(element);
  if (it != index_.end()) {
    if (it->second.expiry >= expiry) return;  // stored copy is fresher
    erase_key(it->second);
    index_.erase(it);
  }
  if (is_dominated(hash, expiry)) return;
  prune_dominated_by(hash, expiry);
  const Key key{expiry, hash, element};
  tree_.insert(key, 0);
  index_.emplace(element, key);
  invalidate_front();
}

void DominanceSet::expire(sim::Slot now) {
  tree_.remove_prefix_while(
      [now](const Key& k, char) { return k.expiry <= now; },
      [this](const Key& k, char) {
        index_.erase(k.element);
        invalidate_front();
      });
}

std::optional<Candidate> DominanceSet::min_hash() const {
  if (!front_fresh_) {
    front_cache_.reset();
    if (const auto f = tree_.front()) {
      front_cache_ = Candidate{f->first.element, f->first.hash,
                               f->first.expiry};
    }
    front_fresh_ = true;
  }
  return front_cache_;
}

std::vector<Candidate> DominanceSet::snapshot() const {
  std::vector<Candidate> out;
  out.reserve(tree_.size());
  tree_.for_each([&out](const Key& k, char) {
    out.push_back(Candidate{k.element, k.hash, k.expiry});
  });
  return out;
}

bool DominanceSet::check_invariants() const {
  if (!tree_.check_invariants()) return false;
  if (tree_.size() != index_.size()) return false;
  // Staircase: in (expiry, hash) key order, hashes are non-decreasing,
  // and no tuple is dominated by a later one.
  bool ok = true;
  bool have_prev = false;
  Candidate prev{};
  tree_.for_each([&](const Key& k, char) {
    const Candidate cur{k.element, k.hash, k.expiry};
    if (have_prev) {
      if (cur.hash < prev.hash) ok = false;
      if (cur.expiry > prev.expiry && cur.hash < prev.hash) ok = false;
    }
    auto idx = index_.find(cur.element);
    if (idx == index_.end() || idx->second.expiry != cur.expiry ||
        idx->second.hash != cur.hash) {
      ok = false;
    }
    prev = cur;
    have_prev = true;
  });
  // The cached front must agree with the tree (min_hash() refreshes a
  // stale cache, so this catches missed invalidations only).
  const auto cached = min_hash();
  const auto f = tree_.front();
  if (cached.has_value() != f.has_value()) return false;
  if (cached && (cached->element != f->first.element ||
                 cached->hash != f->first.hash ||
                 cached->expiry != f->first.expiry)) {
    return false;
  }
  return ok;
}

void DominanceSet::prune_dominated_by(std::uint64_t hash, sim::Slot expiry) {
  // Dominated tuples have expiry' < expiry and hash' > hash. Tuples with
  // expiry' < expiry are exactly the keys below (expiry, 0, 0); by the
  // staircase those among them with hash' > hash form a suffix, which
  // the fused treap operation detaches without leaving the node pool.
  tree_.remove_suffix_of_lower_while(
      Key{expiry, kU64Min, kU64Min},
      [hash](const Key& k, char) { return k.hash > hash; },
      [this](const Key& k, char) {
        index_.erase(k.element);
        invalidate_front();
      });
}

bool DominanceSet::is_dominated(std::uint64_t hash, sim::Slot expiry) const {
  // A dominating tuple has expiry' > expiry and hash' < hash. Keys with
  // expiry' > expiry form a suffix whose minimum hash sits at its front
  // (staircase), which lower_bound finds directly.
  if (expiry == std::numeric_limits<sim::Slot>::max()) return false;
  auto lb = tree_.lower_bound_key(Key{expiry + 1, kU64Min, kU64Min});
  return lb.has_value() && lb->hash < hash;
}

void DominanceSet::erase_key(const Key& key) {
  const bool removed = tree_.erase(key);
  assert(removed);
  (void)removed;
  invalidate_front();
}

}  // namespace dds::treap
