// A brutally simple O(n)-per-operation reference implementation of the
// dominance set, used (a) as the oracle in equivalence tests against the
// treap-backed DominanceSet and (b) as the baseline in the treap ablation
// bench (A4). Semantics are identical to DominanceSet.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "treap/dominance_set.h"

namespace dds::treap {

class NaiveDominanceSet {
 public:
  void observe(std::uint64_t element, std::uint64_t hash, sim::Slot expiry);
  void insert(std::uint64_t element, std::uint64_t hash, sim::Slot expiry);
  void expire(sim::Slot now);
  std::optional<Candidate> min_hash() const;

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  bool contains(std::uint64_t element) const;

  /// Candidates in (expiry, hash, element) order, matching
  /// DominanceSet::snapshot.
  std::vector<Candidate> snapshot() const;

 private:
  void prune();

  std::vector<Candidate> items_;  // unordered
};

}  // namespace dds::treap
