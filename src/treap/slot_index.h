// SlotIndex — an element -> pool-slot side-index folded into the treap's
// own storage.
//
// The dominance sets need to answer "is element e already tracked, and
// where?" on every arrival (the duplicate-refresh path). The original
// implementation kept a std::unordered_map<element, Key> next to the
// treap: a second full key copy per node, a chained hash bucket
// allocation per insert, and a second hash lookup per refresh. This
// class replaces it with open addressing OVER THE POOL SLOTS: the table
// is a flat power-of-two array of u64 entries, each packing the
// element's 32-bit home hash next to a u32 slot index into the treap
// pool. Probes compare home hashes inside the flat table and only
// dereference the pool to confirm a candidate hit, so a lookup touches
// the node the subsequent tree operation is about to touch anyway —
// and nothing else. Nothing is stored twice and the table never
// allocates after it reaches its high-water capacity.
//
// Probing is linear with backward-shift deletion (no tombstones, and
// the stored home hash means deletion never reads the pool), so
// steady-state churn cannot degrade the table. Load is kept under 1/2:
// linear probing clusters sharply past that, and at eight bytes per
// entry the halved occupancy still costs less memory than one
// chained-map bucket node per element did.
//
// The owner supplies an `ElementAt` callable (slot -> element) with
// every operation, because only the owner knows which treap pool the
// slots point into. Slot indices must be stable while indexed — the
// pooled Treap guarantees exactly that (see treap.h).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace dds::treap {

/// Open-addressed element -> pool-slot index over a treap's node pool:
/// flat power-of-two table of (home-hash, slot) entries, linear probing,
/// backward-shift deletion, load < 1/2. Allocation-free in steady state.
class SlotIndex {
 public:
  /// "Not indexed" sentinel, == Treap::kNoSlot.
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Slot holding `element`, or kNoSlot.
  template <typename ElementAt>
  std::uint32_t find(std::uint64_t element, ElementAt at) const {
    if (count_ == 0) return kNoSlot;
    const std::uint32_t mask = this->mask();
    const std::uint64_t h = home_hash(element);
    for (std::uint32_t i = static_cast<std::uint32_t>(h) & mask;;
         i = (i + 1) & mask) {
      const std::uint64_t entry = table_[i];
      if (entry == kEmpty) return kNoSlot;
      if ((entry >> 32) == h) {
        const auto slot = static_cast<std::uint32_t>(entry);
        if (at(slot) == element) return slot;
      }
    }
  }

  /// Indexes `element` at `slot`. The element must not be indexed yet
  /// (refresh paths erase first).
  template <typename ElementAt>
  void insert(std::uint64_t element, std::uint32_t slot, ElementAt at) {
    if ((count_ + 1) * 2 > table_.size()) grow(at);
    const std::uint32_t mask = this->mask();
    const std::uint64_t h = home_hash(element);
    std::uint32_t i = static_cast<std::uint32_t>(h) & mask;
    while (table_[i] != kEmpty) i = (i + 1) & mask;
    table_[i] = (h << 32) | slot;
    ++count_;
  }

  /// Unindexes `element`. Returns false if it was not indexed.
  /// Backward-shift deletion: later entries of the probe run slide into
  /// the hole, so lookups never need tombstones.
  template <typename ElementAt>
  bool erase(std::uint64_t element, ElementAt at) {
    if (count_ == 0) return false;
    const std::uint32_t mask = this->mask();
    const std::uint64_t h = home_hash(element);
    std::uint32_t i = static_cast<std::uint32_t>(h) & mask;
    while (true) {
      const std::uint64_t entry = table_[i];
      if (entry == kEmpty) return false;
      if ((entry >> 32) == h &&
          at(static_cast<std::uint32_t>(entry)) == element) {
        break;
      }
      i = (i + 1) & mask;
    }
    std::uint32_t hole = i;
    for (std::uint32_t j = (hole + 1) & mask; table_[j] != kEmpty;
         j = (j + 1) & mask) {
      // The entry at j may move into the hole iff its home position is
      // cyclically outside (hole, j] — i.e. the probe run from its home
      // reaches the hole before reaching j.
      const std::uint32_t home =
          static_cast<std::uint32_t>(table_[j] >> 32) & mask;
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        table_[hole] = table_[j];
        hole = j;
      }
    }
    table_[hole] = kEmpty;
    --count_;
    return true;
  }

  /// Drops every entry but keeps the table storage (no deallocation —
  /// demote/promote cycles must stay allocation-free).
  void clear() noexcept {
    for (auto& e : table_) e = kEmpty;
    count_ = 0;
  }

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Table slots currently allocated; test hook for the zero-allocation
  /// steady state (churn must not change it once warmed up).
  std::size_t capacity() const noexcept { return table_.size(); }

  /// Bytes reserved by the probe table; footprint accounting.
  std::size_t table_bytes() const noexcept {
    return table_.capacity() * sizeof(std::uint64_t);
  }

  /// Prefetch hint: pulls `element`'s home probe line into cache. The
  /// batched ingest path issues this for element i+1 while element i is
  /// being processed, hiding the first (and usually only) probe miss.
  void prefetch(std::uint64_t element) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    if (!table_.empty()) {
      const std::uint64_t h = home_hash(element);
      __builtin_prefetch(&table_[static_cast<std::uint32_t>(h) & mask()]);
    }
#endif
  }

 private:
  /// Empty marker: the slot half is kNoSlot, which no live entry has.
  static constexpr std::uint64_t kEmpty = ~0ULL;

  std::uint32_t mask() const noexcept {
    return static_cast<std::uint32_t>(table_.size() - 1);
  }

  /// Fibonacci (multiplicative) hashing: one multiply, and sequential
  /// element ids — common in synthetic streams — spread perfectly.
  /// The high 32 bits are stored in the entry, so probes and deletions
  /// compare/rehome without touching the pool.
  static std::uint64_t home_hash(std::uint64_t element) noexcept {
    return (element * 0x9E3779B97F4A7C15ULL) >> 32;
  }

  template <typename ElementAt>
  void grow(ElementAt /*at*/) {
    std::vector<std::uint64_t> old = std::move(table_);
    const std::size_t cap = old.empty() ? 16 : old.size() * 2;
    table_.assign(cap, kEmpty);
    const std::uint32_t mask = this->mask();
    for (std::uint64_t entry : old) {
      if (entry == kEmpty) continue;
      std::uint32_t i = static_cast<std::uint32_t>(entry >> 32) & mask;
      while (table_[i] != kEmpty) i = (i + 1) & mask;
      table_[i] = entry;
    }
  }

  std::vector<std::uint64_t> table_;  // power-of-two, kEmpty = empty
  std::size_t count_ = 0;
};

}  // namespace dds::treap
