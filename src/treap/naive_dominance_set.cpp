#include "treap/naive_dominance_set.h"

#include <algorithm>

namespace dds::treap {

void NaiveDominanceSet::observe(std::uint64_t element, std::uint64_t hash,
                                sim::Slot expiry) {
  insert(element, hash, expiry);
}

void NaiveDominanceSet::insert(std::uint64_t element, std::uint64_t hash,
                               sim::Slot expiry) {
  auto it = std::find_if(items_.begin(), items_.end(),
                         [&](const Candidate& c) { return c.element == element; });
  if (it != items_.end()) {
    if (it->expiry >= expiry) return;
    items_.erase(it);
  }
  items_.push_back(Candidate{element, hash, expiry});
  prune();
}

void NaiveDominanceSet::expire(sim::Slot now) {
  std::erase_if(items_, [now](const Candidate& c) { return c.expiry <= now; });
}

std::optional<Candidate> NaiveDominanceSet::min_hash() const {
  if (items_.empty()) return std::nullopt;
  return *std::min_element(
      items_.begin(), items_.end(),
      [](const Candidate& a, const Candidate& b) { return a.hash < b.hash; });
}

bool NaiveDominanceSet::contains(std::uint64_t element) const {
  return std::any_of(items_.begin(), items_.end(),
                     [&](const Candidate& c) { return c.element == element; });
}

std::vector<Candidate> NaiveDominanceSet::snapshot() const {
  std::vector<Candidate> out = items_;
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.expiry != b.expiry) return a.expiry < b.expiry;
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.element < b.element;
  });
  return out;
}

void NaiveDominanceSet::prune() {
  // Quadratic dominance sweep: drop any candidate for which a strictly
  // later-expiring, strictly smaller-hash candidate exists.
  std::erase_if(items_, [this](const Candidate& c) {
    return std::any_of(items_.begin(), items_.end(), [&](const Candidate& d) {
      return d.expiry > c.expiry && d.hash < c.hash;
    });
  });
}

}  // namespace dds::treap
