#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dds::util {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double harmonic(std::uint64_t n) noexcept {
  if (n == 0) return 0.0;
  constexpr std::uint64_t kExactCutoff = 1'000'000;
  if (n <= kExactCutoff) {
    // Sum smallest-first for accuracy.
    double h = 0.0;
    for (std::uint64_t j = n; j >= 1; --j) h += 1.0 / static_cast<double>(j);
    return h;
  }
  constexpr double kEulerGamma = 0.57721566490153286060;
  const double x = static_cast<double>(n);
  return std::log(x) + kEulerGamma + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x);
}

double infinite_window_upper_bound(std::uint64_t k, std::uint64_t s,
                                   std::uint64_t d) noexcept {
  const double ks = static_cast<double>(k) * static_cast<double>(s);
  if (d <= s) return 2.0 * static_cast<double>(k) * static_cast<double>(d);
  return 2.0 * ks + 2.0 * ks * (harmonic(d) - harmonic(s));
}

double infinite_window_lower_bound(std::uint64_t k, std::uint64_t s,
                                   std::uint64_t d) noexcept {
  if (d <= s) return static_cast<double>(k) * static_cast<double>(d) / 2.0;
  const double ks = static_cast<double>(k) * static_cast<double>(s);
  return ks / 2.0 * (harmonic(d) - harmonic(s) + 1.0);
}

double chi_square_uniform(std::span<const std::uint64_t> observed) noexcept {
  if (observed.empty()) return 0.0;
  double total = 0.0;
  for (auto c : observed) total += static_cast<double>(c);
  if (total == 0.0) return 0.0;
  const double expected = total / static_cast<double>(observed.size());
  double stat = 0.0;
  for (auto c : observed) {
    const double diff = static_cast<double>(c) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

double chi_square_critical(std::size_t dof, double alpha) noexcept {
  if (dof == 0) return 0.0;
  // Wilson-Hilferty: X ~ dof * (1 - 2/(9 dof) + z * sqrt(2/(9 dof)))^3.
  // z is the upper-alpha standard-normal quantile via Acklam-style inverse.
  const double p = 1.0 - alpha;
  // Beasley-Springer-Moro inverse normal CDF approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  double z;
  if (p < 0.02425) {
    const double q = std::sqrt(-2.0 * std::log(p));
    z = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 0.97575) {
    const double q = p - 0.5;
    const double r = q * q;
    z = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    z = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double k = static_cast<double>(dof);
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

double ks_statistic_uniform(std::vector<double> values) noexcept {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  double d = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double cdf = values[i];  // U(0,1) CDF is identity.
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(cdf - lo), std::abs(hi - cdf)});
  }
  return d;
}

double ks_critical(std::size_t n, double alpha) noexcept {
  if (n == 0) return std::numeric_limits<double>::infinity();
  const double c = alpha <= 0.01 ? 1.628 : (alpha <= 0.05 ? 1.358 : 1.224);
  return c / std::sqrt(static_cast<double>(n));
}

double pearson(std::span<const double> x, std::span<const double> y) noexcept {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  RunningStat sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  if (sx.stddev() == 0.0 || sy.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(x.size() - 1);
  return cov / (sx.stddev() * sy.stddev());
}

double lls_slope(std::span<const double> x, std::span<const double> y) noexcept {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  RunningStat sx;
  for (double v : x) sx.add(v);
  if (sx.variance() == 0.0) return 0.0;
  RunningStat sy;
  for (double v : y) sy.add(v);
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(x.size() - 1);
  return cov / sx.variance();
}

}  // namespace dds::util
