// Tabular output for the bench harness: every experiment prints a
// GitHub-style Markdown table to stdout (the "paper row" view) and can
// mirror the same rows into a CSV file for plotting.
#pragma once

#include <cstddef>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

namespace dds::util {

/// A simple column-aligned table. Cells are strings; numeric helpers
/// format with sensible precision. Rows must match the header width.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  std::size_t columns() const noexcept { return header_.size(); }
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Appends a row; throws std::invalid_argument on width mismatch.
  void add_row(std::vector<std::string> row);

  /// Renders as a GitHub Markdown table with aligned columns.
  std::string to_markdown() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing comma/quote/NL).
  std::string to_csv() const;

  /// Renders as a JSON array of row objects keyed by header; cells that
  /// parse fully as numbers are emitted as numbers, the rest as strings.
  std::string to_json() const;

  /// Writes CSV to `path`, creating parent directories as needed.
  void write_csv(const std::filesystem::path& path) const;

  /// Writes the JSON rendering to `path`, creating parent directories.
  void write_json(const std::filesystem::path& path) const;

  /// Prints the Markdown rendering to `os` with a title line.
  void print(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (trailing zeros
/// trimmed); integers print exactly.
std::string fmt(double value, int digits = 6);
std::string fmt(std::uint64_t value);
std::string fmt(std::int64_t value);

/// Fixed-point formatting with exactly `decimals` digits after the
/// point — for percentages and other columns where fmt()'s
/// significant-digit precision would collapse 99.7 into "1e+02".
std::string fmt_fixed(double value, int decimals);

}  // namespace dds::util
