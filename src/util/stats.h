// Statistics toolkit used by experiments and property tests:
// streaming moments, confidence intervals, harmonic numbers (the paper's
// bounds are phrased in terms of H_n), chi-square and Kolmogorov-Smirnov
// goodness-of-fit helpers for sample-uniformity testing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dds::util {

/// Welford streaming mean/variance accumulator.
class RunningStat {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for n < 2).
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean (1.96 * stderr). 0 for n < 2.
  double ci95_halfwidth() const noexcept;

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStat& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// n-th harmonic number H_n = sum_{j=1..n} 1/j. Exact summation for small
/// n, asymptotic expansion (ln n + gamma + 1/2n - ...) beyond 1e6.
double harmonic(std::uint64_t n) noexcept;

/// The paper's infinite-window upper bound on expected total messages:
/// E[Y] <= 2ks + 2ks(H_d - H_s)  (Lemma 4), for d >= s.
double infinite_window_upper_bound(std::uint64_t k, std::uint64_t s,
                                   std::uint64_t d) noexcept;

/// The paper's lower bound (Lemma 9): (ks/2)(H_d - H_s + 1).
double infinite_window_lower_bound(std::uint64_t k, std::uint64_t s,
                                   std::uint64_t d) noexcept;

/// Chi-square statistic for observed counts against uniform expectation.
/// Every bin's expected count is total/bins.
double chi_square_uniform(std::span<const std::uint64_t> observed) noexcept;

/// Upper-tail critical value of the chi-square distribution with `dof`
/// degrees of freedom at significance alpha, via the Wilson-Hilferty
/// normal approximation. Accurate to a few percent for dof >= 10, which is
/// all the uniformity tests need.
double chi_square_critical(std::size_t dof, double alpha) noexcept;

/// One-sample Kolmogorov-Smirnov statistic against U(0,1).
/// `values` need not be sorted; a sorted copy is made.
double ks_statistic_uniform(std::vector<double> values) noexcept;

/// Asymptotic critical value of the KS statistic at significance alpha:
/// c(alpha)/sqrt(n), with c(0.05) ~ 1.358, c(0.01) ~ 1.628.
double ks_critical(std::size_t n, double alpha) noexcept;

/// Pearson correlation of two equally sized series (NaN-free; returns 0
/// if either side is constant).
double pearson(std::span<const double> x, std::span<const double> y) noexcept;

/// Least-squares slope of y on x. Returns 0 if x is constant.
double lls_slope(std::span<const double> x, std::span<const double> y) noexcept;

}  // namespace dds::util
