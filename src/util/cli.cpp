#include "util/cli.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dds::util {

Cli& Cli::flag(std::string name, std::string help, std::string default_value) {
  specs_[std::move(name)] = Spec{std::move(help), std::move(default_value),
                                 /*is_boolean=*/false};
  return *this;
}

Cli& Cli::boolean(std::string name, std::string help) {
  specs_[std::move(name)] = Spec{std::move(help), "false", /*is_boolean=*/true};
  return *this;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s",
                   arg.c_str(), usage(argv[0]).c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = specs_.find(name);
    if (it == specs_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    if (it->second.is_boolean) {
      values_[name] = has_value ? value : "true";
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
          return false;
        }
        value = argv[++i];
      }
      values_[name] = value;
    }
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  auto spec = specs_.find(name);
  if (spec == specs_.end()) {
    throw std::invalid_argument("Cli: flag not registered: --" + name);
  }
  return spec->second.default_value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

std::uint64_t Cli::get_uint(const std::string& name) const {
  return std::stoull(get(name));
}

double Cli::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

std::vector<std::uint64_t> Cli::get_uint_list(const std::string& name) const {
  std::vector<std::uint64_t> out;
  std::stringstream ss(get(name));
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoull(tok));
  }
  return out;
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.is_boolean) os << " <value> (default: " << spec.default_value
                             << ")";
    os << "\n      " << spec.help << '\n';
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

}  // namespace dds::util
