// Minimal little-endian byte-image helpers for small state snapshots
// (the speculation save/restore path in sim/node.h). The checkpoint
// layer (core/checkpoint.h) has its own richer framed format with
// checksums and versioning; these are the bare primitives for images
// that never leave the process and live for one engine wave.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace dds::util {

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline std::uint64_t get_u64(std::span<const std::uint8_t> in,
                             std::size_t& pos) {
  if (pos + 8 > in.size()) {
    throw std::out_of_range("util::get_u64: image truncated");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t{in[pos + i]} << (8 * i);
  }
  pos += 8;
  return v;
}

}  // namespace dds::util
