#include "util/table.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dds::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table: header must be non-empty");
  }
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width " +
                                std::to_string(row.size()) +
                                " != header width " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_markdown() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {
std::string json_escape(const std::string& cell) {
  std::string out = "\"";
  for (char ch : cell) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

/// A cell is emitted as a bare JSON number iff the whole string matches
/// the JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
bool is_json_number(const std::string& cell) {
  std::size_t i = 0;
  const std::size_t n = cell.size();
  auto digits = [&]() {
    const std::size_t start = i;
    while (i < n && cell[i] >= '0' && cell[i] <= '9') ++i;
    return i > start;
  };
  if (i < n && cell[i] == '-') ++i;
  if (i < n && cell[i] == '0') {
    ++i;  // no leading zeros
  } else if (!digits()) {
    return false;
  }
  if (i < n && cell[i] == '.') {
    ++i;
    if (!digits()) return false;
  }
  if (i < n && (cell[i] == 'e' || cell[i] == 'E')) {
    ++i;
    if (i < n && (cell[i] == '+' || cell[i] == '-')) ++i;
    if (!digits()) return false;
  }
  return n > 0 && i == n;
}
}  // namespace

std::string Table::to_json() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c) os << ", ";
      os << json_escape(header_[c]) << ": ";
      os << (is_json_number(rows_[r][c]) ? rows_[r][c]
                                         : json_escape(rows_[r][c]));
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
  return os.str();
}

void Table::write_json(const std::filesystem::path& path) const {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("Table: cannot open " + path.string());
  }
  out << to_json();
}

void Table::write_csv(const std::filesystem::path& path) const {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("Table: cannot open " + path.string());
  }
  out << to_csv();
}

void Table::print(std::ostream& os, const std::string& title) const {
  os << "\n### " << title << "\n\n" << to_markdown() << '\n';
}

std::string fmt(double value, int digits) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  std::ostringstream os;
  os.precision(digits);
  os << value;
  return os.str();
}

std::string fmt(std::uint64_t value) { return std::to_string(value); }
std::string fmt(std::int64_t value) { return std::to_string(value); }

std::string fmt_fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

}  // namespace dds::util
