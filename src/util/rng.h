// Deterministic pseudo-random number generation for the simulator.
//
// Every randomized component in this library takes an explicit seed so a
// full experiment is bit-reproducible. Two generators are provided:
//
//  * SplitMix64 — tiny, stateless-feeling stream generator; also used to
//    derive independent sub-seeds from a master seed.
//  * Xoshiro256StarStar — the general-purpose workhorse (period 2^256-1),
//    used by workload generators and samplers.
//
// Neither is cryptographic; both pass BigCrush-style batteries and are the
// standard choice for simulation workloads.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace dds::util {

/// SplitMix64 (Steele, Lea & Flood 2014). One 64-bit output per step.
/// Also usable as a seed-sequence: successive outputs are independent
/// enough to seed other generators.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// The splitmix64 output function applied to a single value: a high-quality
/// 64-bit mixer / finalizer. Useful to decorrelate structured seeds.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna 2018).
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a SplitMix64 stream, per the authors'
  /// recommendation (guarantees a non-zero state).
  explicit constexpr Xoshiro256StarStar(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// with rejection).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  constexpr bool next_bernoulli(double p) noexcept {
    return next_double() < p;
  }

  /// The four state words, for exact save/restore (speculation
  /// snapshots roll a site's RNG consumption back with its state).
  constexpr const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }
  constexpr void set_state(
      const std::array<std::uint64_t, 4>& state) noexcept {
    state_ = state;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives the i-th independent sub-seed from a master seed. Used to give
/// each site / generator / run its own decorrelated stream.
constexpr std::uint64_t derive_seed(std::uint64_t master,
                                    std::uint64_t index) noexcept {
  return mix64(master ^ mix64(index + 0x517CC1B727220A95ULL));
}

}  // namespace dds::util
