#include "util/rng.h"

namespace dds::util {

std::uint64_t Xoshiro256StarStar::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace dds::util
