// Minimal command-line flag parser for the bench/example binaries.
// Supports `--name value`, `--name=value`, and boolean `--flag`.
// Unknown flags are an error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dds::util {

class Cli {
 public:
  /// Registers a flag with a help string and (for valued flags) a default.
  Cli& flag(std::string name, std::string help, std::string default_value);
  Cli& boolean(std::string name, std::string help);

  /// Parses argv. Returns false (after printing usage) on `--help` or on
  /// any unknown/malformed flag.
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  std::uint64_t get_uint(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Comma-separated integer list, e.g. "--sites 5,10,20".
  std::vector<std::uint64_t> get_uint_list(const std::string& name) const;

  std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string help;
    std::string default_value;
    bool is_boolean = false;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
};

}  // namespace dds::util
