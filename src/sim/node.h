// Node interfaces for the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/message.h"

namespace dds::net {
class Transport;
}  // namespace dds::net

namespace dds::sim {

/// Anything attached to a transport: protocol sites and coordinators.
class Node {
 public:
  virtual ~Node() = default;

  /// Handles a delivered message. May send further messages via `net`.
  virtual void on_message(const Message& msg, net::Transport& net) = 0;

  /// Number of stream-element records currently held (the paper's
  /// per-site "memory consumption", Figures 5.7 / 5.9). Constant-state
  /// nodes report their O(1) state size.
  virtual std::size_t state_size() const noexcept { return 0; }
};

/// A node that observes stream elements (a site).
class StreamNode : public Node {
 public:
  /// Called by the runner for every element delivered to this site in
  /// slot `t`. May send messages via `net`.
  virtual void on_element(std::uint64_t element, Slot t,
                          net::Transport& net) = 0;

  /// Batched delivery: every element of `elements` arrives at this site
  /// in slot `t`, in order. The contract is EXACT equivalence to
  /// element-at-a-time delivery with a transport drain after each
  /// element — the default does literally that. Overrides must keep the
  /// per-element drain boundary (so synchronous replies land before the
  /// next element is processed and wire traces stay bit-identical; a
  /// drain with nothing due is a no-op, so unconditional draining is
  /// free) but amortize hash dispatch, virtual calls, and memory
  /// latency (prefetch of element i+1's lines) across the batch.
  virtual void on_element_batch(std::span<const std::uint64_t> elements,
                                Slot t, net::Transport& net);

  /// Called once per slot before any arrivals of slot `t` are delivered
  /// (sliding-window sites run their expiry logic here). Default: no-op.
  virtual void on_slot_begin(Slot t, net::Transport& net) {
    (void)t;
    (void)net;
  }

  // ---- speculation snapshots -------------------------------------------
  //
  // The speculative lockstep engine runs a site past the transport's
  // delivery horizon and rolls it back when a delivery lands inside a
  // slot range it has already executed. Rollback restores the site from
  // a byte snapshot taken at the wave start and re-executes its items,
  // so the snapshot must capture EVERYTHING that influences the site's
  // outputs: candidate state, RNG state, dedup sets, pending flags —
  // but not scratch buffers that are rebuilt from scratch per element.

  /// True when save/restore round-trip the site's complete behavioral
  /// state. Sites that return false are never speculated past the
  /// delivery horizon (the engine keeps plain lockstep waves).
  virtual bool speculation_capable() const noexcept { return false; }

  /// Appends a byte image of the site's behavioral state to `out`.
  virtual void save_speculation_state(std::vector<std::uint8_t>& out) const {
    (void)out;
    throw std::logic_error("save_speculation_state: site not capable");
  }

  /// Restores state previously produced by save_speculation_state.
  virtual void restore_speculation_state(std::span<const std::uint8_t> image) {
    (void)image;
    throw std::logic_error("restore_speculation_state: site not capable");
  }
};

}  // namespace dds::sim
