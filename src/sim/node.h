// Node interfaces for the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "sim/message.h"

namespace dds::net {
class Transport;
}  // namespace dds::net

namespace dds::sim {

/// Anything attached to a transport: protocol sites and coordinators.
class Node {
 public:
  virtual ~Node() = default;

  /// Handles a delivered message. May send further messages via `net`.
  virtual void on_message(const Message& msg, net::Transport& net) = 0;

  /// Number of stream-element records currently held (the paper's
  /// per-site "memory consumption", Figures 5.7 / 5.9). Constant-state
  /// nodes report their O(1) state size.
  virtual std::size_t state_size() const noexcept { return 0; }
};

/// A node that observes stream elements (a site).
class StreamNode : public Node {
 public:
  /// Called by the runner for every element delivered to this site in
  /// slot `t`. May send messages via `net`.
  virtual void on_element(std::uint64_t element, Slot t,
                          net::Transport& net) = 0;

  /// Batched delivery: every element of `elements` arrives at this site
  /// in slot `t`, in order. The contract is EXACT equivalence to
  /// element-at-a-time delivery with a transport drain after each
  /// element — the default does literally that. Overrides must keep the
  /// per-element drain boundary (so synchronous replies land before the
  /// next element is processed and wire traces stay bit-identical; a
  /// drain with nothing due is a no-op, so unconditional draining is
  /// free) but amortize hash dispatch, virtual calls, and memory
  /// latency (prefetch of element i+1's lines) across the batch.
  virtual void on_element_batch(std::span<const std::uint64_t> elements,
                                Slot t, net::Transport& net);

  /// Called once per slot before any arrivals of slot `t` are delivered
  /// (sliding-window sites run their expiry logic here). Default: no-op.
  virtual void on_slot_begin(Slot t, net::Transport& net) {
    (void)t;
    (void)net;
  }
};

}  // namespace dds::sim
