// Execution engines: how an arrival stream is driven through a deployed
// protocol (sites + coordinator(s) on a transport).
//
// The Engine base owns everything every engine shares — the slot clock,
// per-slot expiry callbacks, arrival validation, and the progress
// observer — and leaves one question to subclasses: how site work is
// scheduled. SerialEngine is the paper's synchronous model, one arrival
// at a time on the calling thread. ShardedEngine partitions sites
// across worker threads and merges their protocol traffic back in
// arrival order, producing bit-identical samples, estimates, and
// message counters (see sharded_engine.h for the replay scheme).
//
// make_engine() picks the strongest engine a deployment supports; the
// deployment facades call it with the knobs from SystemConfig.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/transport.h"
#include "sim/node.h"

namespace dds::obs {
class MetricsRegistry;
class Tracer;
}  // namespace dds::obs

namespace dds::sim {

/// One stream observation: element `element` arrives at site `site`
/// during slot `slot`. A single slot may carry any number of arrivals
/// (including several at the same site), matching Chapter 4's model.
struct Arrival {
  Slot slot = 0;
  NodeId site = 0;
  std::uint64_t element = 0;
};

/// Lazily produced arrival sequence (non-decreasing in slot). Sources are
/// single-pass; experiments construct a fresh source per run.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;
  /// Next arrival, or nullopt at end of stream.
  virtual std::optional<Arrival> next() = 0;
};

/// Progress snapshot handed to the observer callback.
struct Progress {
  std::uint64_t elements_processed = 0;
  Slot slot = 0;
  bool final_snapshot = false;
};

/// Engine selection knobs (part of the unified deployment config).
struct EngineConfig {
  /// Site worker threads. 1 = SerialEngine; >1 asks for a ShardedEngine
  /// (granted when the transport and protocol allow, see make_engine).
  std::uint32_t num_threads = 1;
  /// Max arrivals a ShardedEngine buffers per wave between barriers.
  std::size_t max_wave = 1 << 16;
  /// Coalesce replay->worker wakeups: all of an exchange's coordinator
  /// messages are enqueued silently and the worker is woken once, at
  /// the end-of-exchange sentinel, instead of once per message. Purely
  /// a syscall/handoff optimization — the delivered sequence is
  /// identical either way; abl11's wakeup ablation measures the gap.
  bool coalesce_wakeups = true;
  /// Slots a lockstep wave may run PAST the transport's delivery
  /// horizon, speculating that no delivery lands inside already-executed
  /// work; a mis-speculated delivery rolls the target site back to its
  /// wave-start snapshot and replays. 0 disables speculation (waves stay
  /// horizon-sized). Granted only when every site is
  /// speculation_capable() and the protocol takes no slot-begin
  /// callbacks; output stays bit-identical to SerialEngine either way.
  std::uint32_t speculation_window = 0;
};

/// Drives an arrival stream through a deployed protocol. Owns the slot
/// clock, per-slot expiry callbacks, arrival validation, and the
/// progress observer; subclasses decide how site work is scheduled
/// (SerialEngine: one arrival at a time; ShardedEngine: site partitions
/// on worker threads with order-preserving replay).
class Engine {
 public:
  /// `sites[i]` handles arrivals for site id i. If `invoke_slot_begin` is
  /// set, every site receives on_slot_begin for every slot in order (the
  /// sliding-window protocols need this for expiry processing); leave it
  /// off for infinite-window runs where slots carry no semantics.
  Engine(net::Transport& net, std::vector<StreamNode*> sites,
         bool invoke_slot_begin);
  virtual ~Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Observer invoked every `observe_every` arrivals and once at the end
  /// (with final_snapshot=true). observe_every == 0 disables periodic
  /// observation. Engines quiesce all site work before invoking it, so
  /// the snapshot is identical across engines.
  void set_observer(std::uint64_t observe_every,
                    std::function<void(const Progress&)> observer);

  /// Runs the whole source, then lets the transport finish in-flight
  /// deliveries. Returns the number of arrivals processed.
  virtual std::uint64_t run(ArrivalSource& source) = 0;

  /// Batched variant of run(): groups up to `max_batch` consecutive
  /// arrivals that share a (slot, site) and delivers each group through
  /// StreamNode::on_element_batch. Bit-identical to run() — the batch
  /// hook's contract keeps the per-element drain boundary — but
  /// amortizes dispatch, hashing, and memory latency. The base default
  /// ignores batching and calls run() (the sharded engine schedules by
  /// site partition already); SerialEngine overrides it. `max_batch`
  /// <= 1 is plain run(). Progress observers fire at batch boundaries:
  /// at most one observation per batch, when a multiple of
  /// observe_every is crossed inside it.
  virtual std::uint64_t run_batched(ArrivalSource& source,
                                    std::size_t max_batch) {
    (void)max_batch;
    return run(source);
  }

  /// Advances slot processing through `slot` without arrivals (used to
  /// let sliding windows expire after the stream ends).
  void advance_to_slot(Slot slot) { begin_slots_through(slot); }

  Slot current_slot() const noexcept { return current_slot_; }

  /// Engine identity, for logging/benches ("serial" / "sharded").
  virtual const char* name() const noexcept = 0;
  /// Worker threads driving site work (1 for the serial engine).
  virtual std::uint32_t num_threads() const noexcept { return 1; }

  /// Why make_engine picked this engine/mode (a static string, e.g.
  /// "serial: zero-horizon wire (no positive delivery bound)" or
  /// "sharded: speculative lockstep"). Engines constructed directly
  /// report "constructed directly". Benches print this so the
  /// serial-vs-lockstep-vs-speculative selection is observable instead
  /// of a silent fallback.
  const char* mode_reason() const noexcept { return mode_reason_; }
  void set_mode_reason(const char* reason) noexcept { mode_reason_ = reason; }

  /// Registers engine metrics with `registry` (all under the "engine."
  /// prefix: they describe the execution strategy, not the protocol, so
  /// the determinism tests strip them before comparing engines) and
  /// stores `tracer` for wave/stall events (category "engine", excluded
  /// the same way). Either pointer may be null. Subclasses extend and
  /// must call the base.
  virtual void bind_observability(obs::MetricsRegistry* registry,
                                  obs::Tracer* tracer);

 protected:
  /// Advances the slot clock (and per-slot expiry callbacks) through
  /// `slot`, delivering due transport traffic — the synchronous portion
  /// every engine shares.
  void begin_slots_through(Slot slot);

  /// Throws like the legacy Runner on slot-order or site-id violations.
  void validate(const Arrival& arrival) const;

  void observe(bool final_snapshot) {
    if (observer_) {
      observer_(Progress{processed_, current_slot_, final_snapshot});
    }
  }

  net::Transport& net_;
  std::vector<StreamNode*> sites_;
  /// Non-owning; null when tracing is off (engine-category events only).
  obs::Tracer* tracer_ = nullptr;
  const char* mode_reason_ = "constructed directly";
  bool invoke_slot_begin_;
  Slot current_slot_ = -1;
  std::uint64_t processed_ = 0;
  std::uint64_t observe_every_ = 0;
  std::function<void(const Progress&)> observer_;
};

/// Builds the strongest engine the deployment supports: a ShardedEngine
/// when `config.num_threads > 1`, there are at least two sites to
/// partition, and the transport is either synchronous (zero-delay —
/// the run-ahead fast path) or certifies a positive delivery horizon
/// (realistic wires — the lockstep path; see sharded_engine.h);
/// otherwise the SerialEngine. Callers that cannot tolerate sharded
/// execution (protocols with coordinator->everyone traffic) simply pass
/// num_threads = 1.
std::unique_ptr<Engine> make_engine(net::Transport& net,
                                    std::vector<StreamNode*> sites,
                                    bool invoke_slot_begin,
                                    const EngineConfig& config = {});

}  // namespace dds::sim
