#include "sim/sharded_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace dds::sim {

void ShardedEngine::bind_observability(obs::MetricsRegistry* registry,
                                      obs::Tracer* tracer) {
  Engine::bind_observability(registry, tracer);
  if (registry == nullptr) return;
  registry->counter("engine.waves", &waves_);
  registry->counter("engine.lockstep.stalls", &lockstep_stalls_);
  registry->counter("engine.wakeups", &wakeups_);
  registry->histogram("engine.wave.arrivals", &wave_size_hist_);
  registry->histogram("engine.inbox.depth", &inbox_depth_hist_);
  metrics_bound_ = true;
}

ShardedEngine::ShardedEngine(net::Transport& net,
                             std::vector<StreamNode*> sites,
                             bool invoke_slot_begin,
                             const EngineConfig& config)
    : Engine(net, std::move(sites), invoke_slot_begin),
      max_wave_(std::max<std::size_t>(1, config.max_wave)),
      lockstep_(!net.synchronous()),
      coalesce_wakeups_(config.coalesce_wakeups) {
  if (lockstep_ && !(net.delivery_horizon() > 0.0)) {
    throw std::invalid_argument(
        "ShardedEngine: transport must be synchronous or certify a "
        "positive delivery horizon (lockstep mode)");
  }
  const auto num_workers = static_cast<std::uint32_t>(std::clamp<std::size_t>(
      config.num_threads, 1, sites_.size()));
  shards_.reserve(num_workers);
  for (std::uint32_t j = 0; j < num_workers; ++j) {
    shards_.push_back(
        std::make_unique<Shard>(net.num_sites(), net.num_coordinators()));
  }
  shard_of_site_.resize(sites_.size());
  proxies_.reserve(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const auto shard = static_cast<std::uint32_t>(i % num_workers);
    shard_of_site_[i] = shard;
    proxies_.push_back(std::make_unique<SiteProxy>(this, sites_[i], shard));
    net_.attach(static_cast<NodeId>(i), proxies_[i].get());
  }
  workers_.reserve(num_workers);
  for (std::uint32_t j = 0; j < num_workers; ++j) {
    workers_.emplace_back([this, j] { worker_loop(j); });
  }
}

ShardedEngine::~ShardedEngine() {
  {
    std::lock_guard<std::mutex> lk(wave_mutex_);
    shutdown_ = true;
  }
  wave_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  // Hand the attachment table back so the transport outlives the engine
  // with direct site delivery intact.
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    net_.attach(static_cast<NodeId>(i), sites_[i]);
  }
}

void ShardedEngine::worker_loop(std::uint32_t shard_index) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(wave_mutex_);
      wave_cv_.wait(lk, [&] { return shutdown_ || wave_gen_ > seen; });
      if (shutdown_) return;
      seen = wave_gen_;
    }
    try {
      process_wave(shard_index);
    } catch (...) {
      record_worker_error();
    }
    {
      std::lock_guard<std::mutex> lk(wave_mutex_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void ShardedEngine::process_wave(std::uint32_t shard_index) {
  Shard& shard = *shards_[shard_index];
  CaptureTransport& capture = shard.capture;
  for (std::size_t l = 0; l < shard.work.size(); ++l) {
    if (aborted_.load(std::memory_order_relaxed)) return;
    const WorkItem& item = shard.work[l];
    capture.set_now(item.slot);
    capture.captured.clear();
    item.site->on_element(item.element, item.slot, capture);
    const bool emitted = !capture.captured.empty();
    shard.emitted[l] = emitted ? 1 : 0;
    if (emitted) {
      std::lock_guard<std::mutex> g(shard.out_mutex);
      shard.reports.push_back(std::move(capture.captured));
    }
    capture.captured.clear();
    shard.done.store(l + 1, std::memory_order_release);
    // A reporting arrival pauses the shard until the replay thread has
    // run the exchange — the serial engine's drain-to-quiescence point —
    // so the site's next decision sees the coordinator's reply. In
    // lockstep mode no reply can land inside the wave (the delivery
    // horizon guarantees it arrives at a later barrier), so the shard
    // runs straight through.
    if (emitted && !lockstep_) await_replies(shard);
  }
}

void ShardedEngine::await_replies(Shard& shard) {
  std::unique_lock<std::mutex> lk(shard.in_mutex);
  for (;;) {
    while (!shard.inbox.empty()) {
      InboundEntry entry = std::move(shard.inbox.front());
      shard.inbox.pop_front();
      if (entry.sentinel) return;
      lk.unlock();
      apply_inbound(entry.msg, shard.capture);
      lk.lock();
    }
    shard.in_cv.wait(lk, [&] {
      return !shard.inbox.empty() || aborted_.load(std::memory_order_relaxed);
    });
    if (aborted_.load(std::memory_order_relaxed) && shard.inbox.empty()) {
      return;
    }
  }
}

void ShardedEngine::apply_inbound(const Message& msg,
                                  CaptureTransport& capture) {
  StreamNode* site = sites_[msg.to];
  capture.captured.clear();
  site->on_message(msg, capture);
  if (!capture.captured.empty()) {
    throw std::logic_error(
        "ShardedEngine: a site sent messages while absorbing a coordinator "
        "reply; that cascade only the serial engine can order");
  }
}

void ShardedEngine::record_worker_error() {
  {
    std::lock_guard<std::mutex> g(error_mutex_);
    if (!worker_error_) worker_error_ = std::current_exception();
  }
  abort_wave();
}

void ShardedEngine::abort_wave() noexcept {
  aborted_.store(true, std::memory_order_relaxed);
  for (auto& shard : shards_) shard->in_cv.notify_all();
}

void ShardedEngine::deliver_to_site(std::uint32_t shard_index,
                                    StreamNode* site, const Message& msg,
                                    net::Transport& net) {
  if (!wave_running_) {
    // Between waves (slot boundaries, finish, advance_to_slot) the
    // engine is quiescent and delivery is direct, as under the serial
    // engine.
    site->on_message(msg, net);
    return;
  }
  if (lockstep_) {
    throw std::logic_error(
        "ShardedEngine: a site delivery landed inside a lockstep wave; "
        "the transport's delivery_horizon() certificate is wrong");
  }
  if (msg.to != replay_site_) {
    throw std::logic_error(
        "ShardedEngine: coordinator messaged a site other than the one "
        "whose arrival is being replayed; this protocol is not shardable — "
        "deploy it on the serial engine");
  }
  Shard& shard = *shards_[shard_index];
  {
    std::lock_guard<std::mutex> g(shard.in_mutex);
    shard.inbox.push_back(InboundEntry{msg, false});
    if (metrics_bound_) inbox_depth_hist_.observe(shard.inbox.size());
  }
  // Under wakeup coalescing the worker sleeps until the end-of-exchange
  // sentinel: one notify per exchange instead of one per message.
  if (!coalesce_wakeups_) {
    shard.in_cv.notify_one();
    ++wakeups_;
  }
}

std::uint64_t ShardedEngine::run(ArrivalSource& source) {
  std::optional<Arrival> pending;
  bool end_of_stream = false;
  while (!end_of_stream) {
    // ---- collect one wave ------------------------------------------
    plan_shard_.clear();
    plan_site_.clear();
    plan_slot_.clear();
    for (auto& shard : shards_) {
      shard->work.clear();
      shard->emitted.clear();
      shard->reports.clear();
      shard->reports_taken = 0;
      shard->done.store(0, std::memory_order_relaxed);
    }
    Slot wave_last_slot = current_slot_;
    bool have_wave_slot = false;
    Slot wave_slot = 0;
    double wave_limit = 0.0;  // lockstep: admit arrivals with slot < limit
    for (;;) {
      if (!pending) {
        pending = source.next();
        if (!pending) {
          end_of_stream = true;
          break;
        }
      }
      validate(*pending);
      if (pending->slot < wave_last_slot) {
        throw std::invalid_argument("Engine: arrivals must be slot-ordered");
      }
      if (invoke_slot_begin_) {
        // Slot barrier: expiry sweeps run between waves, so a wave never
        // spans slots when per-slot callbacks are on. (This also covers
        // lockstep: the boundary drain cleared everything due through
        // the wave's slot, and in-wave sends land at least the delivery
        // horizon later — at a later barrier.)
        if (have_wave_slot && pending->slot != wave_slot) break;
        wave_slot = pending->slot;
        have_wave_slot = true;
      } else if (lockstep_) {
        // Delivery-horizon barrier: the wave may span slots only as far
        // as nothing — already in flight or sent inside the wave — can
        // become due at any drain the replay performs.
        if (!have_wave_slot) {
          // First arrival: advance the clock through its slot on the
          // main thread (deliveries are direct here — the serial path),
          // then freeze the wave's delivery window.
          begin_slots_through(pending->slot);
          wave_limit = std::min(
              net_.next_delivery_time(),
              static_cast<double>(pending->slot) + net_.delivery_horizon());
          wave_slot = pending->slot;
          have_wave_slot = true;
        } else if (static_cast<double>(pending->slot) >= wave_limit) {
          // Delivery-horizon stall: the wave closes early because the
          // next arrival would cross into the window where in-flight
          // traffic becomes due.
          ++lockstep_stalls_;
          if (tracer_ != nullptr) {
            tracer_->instant("engine", "lockstep.stall", wave_limit, 0,
                             {{"next_slot",
                               static_cast<double>(pending->slot)}});
          }
          break;
        }
      }
      wave_last_slot = pending->slot;
      const auto shard = shard_of_site_[pending->site];
      plan_shard_.push_back(shard);
      plan_site_.push_back(pending->site);
      plan_slot_.push_back(pending->slot);
      shards_[shard]->work.push_back(
          WorkItem{sites_[pending->site], pending->element, pending->slot});
      pending.reset();
      if (plan_shard_.size() >= max_wave_) break;
      if (observe_every_ != 0 &&
          (processed_ + plan_shard_.size()) % observe_every_ == 0) {
        break;  // the observer snapshot needs a quiesced barrier here
      }
    }
    // ---- execute it -------------------------------------------------
    if (!plan_shard_.empty()) {
      for (auto& shard : shards_) shard->emitted.resize(shard->work.size());
      run_wave();
      if (observe_every_ != 0 && processed_ % observe_every_ == 0) {
        observe(/*final_snapshot=*/false);
      }
    }
  }
  net_.finish();
  observe(/*final_snapshot=*/true);
  return processed_;
}

void ShardedEngine::run_wave() {
  if (invoke_slot_begin_) begin_slots_through(plan_slot_.front());
  ++waves_;
  if (metrics_bound_) wave_size_hist_.observe(plan_shard_.size());
  wave_running_ = true;
  {
    std::lock_guard<std::mutex> lk(wave_mutex_);
    workers_done_ = 0;
    ++wave_gen_;
  }
  wave_cv_.notify_all();
  std::exception_ptr replay_error;
  try {
    replay();
  } catch (...) {
    replay_error = std::current_exception();
    abort_wave();
  }
  {
    std::unique_lock<std::mutex> lk(wave_mutex_);
    done_cv_.wait(lk, [&] { return workers_done_ == workers_.size(); });
  }
  wave_running_ = false;
  if (tracer_ != nullptr) {
    tracer_->complete("engine", "wave",
                      static_cast<double>(plan_slot_.front()),
                      static_cast<double>(plan_slot_.back()), 0,
                      {{"arrivals",
                        static_cast<double>(plan_shard_.size())},
                       {"wave", static_cast<double>(waves_)}});
  }
  std::exception_ptr worker_error;
  {
    std::lock_guard<std::mutex> g(error_mutex_);
    worker_error = std::exchange(worker_error_, nullptr);
    aborted_.store(false, std::memory_order_relaxed);
  }
  if (worker_error) std::rethrow_exception(worker_error);
  if (replay_error) std::rethrow_exception(replay_error);
}

void ShardedEngine::replay() {
  const std::size_t wave_size = plan_shard_.size();
  std::vector<std::size_t> cursor(shards_.size(), 0);
  std::vector<std::size_t> done_cache(shards_.size(), 0);
  for (std::size_t s = 0; s < wave_size; ++s) {
    const std::uint32_t j = plan_shard_[s];
    Shard& shard = *shards_[j];
    const std::size_t l = cursor[j]++;
    while (done_cache[j] <= l) {
      done_cache[j] = shard.done.load(std::memory_order_acquire);
      if (done_cache[j] <= l) {
        if (aborted_.load(std::memory_order_relaxed)) {
          throw std::runtime_error("ShardedEngine: wave aborted");
        }
        std::this_thread::yield();
      }
    }
    if (plan_slot_[s] != current_slot_) {
      // Mirrors the serial engine's per-arrival clock advance (slot
      // semantics are off here, so this is set_now + drain only).
      current_slot_ = plan_slot_[s];
      net_.set_now(current_slot_);
      net_.drain();
    }
    if (shard.emitted[l]) {
      std::vector<Message> msgs;
      {
        std::lock_guard<std::mutex> g(shard.out_mutex);
        msgs = std::move(shard.reports[shard.reports_taken++]);
      }
      replay_site_ = plan_site_[s];
      for (const Message& msg : msgs) net_.send(msg);
      net_.drain();
      if (!lockstep_) {
        // End of this arrival's exchange: wake the paused worker. In
        // lockstep mode the worker never paused (the drain above cannot
        // deliver anything before the next barrier), so no handshake.
        {
          std::lock_guard<std::mutex> g(shard.in_mutex);
          shard.inbox.push_back(InboundEntry{Message{}, true});
        }
        shard.in_cv.notify_one();
        ++wakeups_;
      }
    }
    ++processed_;
  }
}

}  // namespace dds::sim
