#include "sim/sharded_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace dds::sim {

void ShardedEngine::bind_observability(obs::MetricsRegistry* registry,
                                      obs::Tracer* tracer) {
  Engine::bind_observability(registry, tracer);
  if (registry == nullptr) return;
  registry->counter("engine.waves", &waves_);
  registry->counter("engine.lockstep.stalls", &lockstep_stalls_);
  registry->counter("engine.wakeups", &wakeups_);
  registry->counter("engine.wave.slots", &wave_slots_total_);
  registry->counter("engine.speculation.rollbacks", &rollbacks_);
  registry->counter("engine.speculation.replayed_slots", &replayed_items_);
  registry->counter("engine.speculation.deferred", &deferred_);
  registry->counter("engine.speculation.snapshot_bytes", &snapshot_bytes_);
  registry->histogram("engine.wave.arrivals", &wave_size_hist_);
  registry->histogram("engine.inbox.depth", &inbox_depth_hist_);
  registry->histogram("engine.wave.slot_span", &wave_slots_hist_);
  metrics_bound_ = true;
}

ShardedEngine::ShardedEngine(net::Transport& net,
                             std::vector<StreamNode*> sites,
                             bool invoke_slot_begin,
                             const EngineConfig& config)
    : Engine(net, std::move(sites), invoke_slot_begin),
      max_wave_(std::max<std::size_t>(1, config.max_wave)),
      lockstep_(!net.synchronous()),
      coalesce_wakeups_(config.coalesce_wakeups),
      rollback_capture_(net.num_sites(), net.num_coordinators()) {
  if (lockstep_ && !(net.delivery_horizon() > 0.0)) {
    throw std::invalid_argument(
        "ShardedEngine: transport must be synchronous or certify a "
        "positive delivery horizon (lockstep mode)");
  }
  speculation_window_ = config.speculation_window;
  speculative_ =
      lockstep_ && speculation_window_ > 0 && !invoke_slot_begin_;
  if (speculative_) {
    for (const auto* site : sites_) {
      if (!site->speculation_capable()) {
        throw std::invalid_argument(
            "ShardedEngine: speculation_window > 0 requires every site "
            "to be speculation_capable() (make_engine() checks this and "
            "downgrades to plain lockstep)");
      }
    }
    site_items_.resize(sites_.size());
    journal_.resize(sites_.size());
    snap_.resize(sites_.size());
    snap_valid_.assign(sites_.size(), 0);
  }
  const auto num_workers = static_cast<std::uint32_t>(std::clamp<std::size_t>(
      config.num_threads, 1, sites_.size()));
  shards_.reserve(num_workers);
  for (std::uint32_t j = 0; j < num_workers; ++j) {
    shards_.push_back(
        std::make_unique<Shard>(net.num_sites(), net.num_coordinators()));
  }
  shard_of_site_.resize(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    shard_of_site_[i] = static_cast<std::uint32_t>(i % num_workers);
    // Sites stay attached to the transport (the Deployment put them
    // there); the engine interposes on deliveries via the sink below
    // instead of swapping proxy nodes into the attachment table. Direct
    // engine construction without prior attachment is also covered:
    net_.attach(static_cast<NodeId>(i), sites_[i]);
  }
  // Install the delivery interposer for the engine's whole lifetime:
  // between waves it passes everything through to normal dispatch (the
  // serial path) while keeping speculation snapshots honest.
  net_.set_delivery_sink(this);
  workers_.reserve(num_workers);
  for (std::uint32_t j = 0; j < num_workers; ++j) {
    workers_.emplace_back([this, j] { worker_loop(j); });
  }
}

ShardedEngine::~ShardedEngine() {
  net_.set_delivery_sink(nullptr);
  {
    std::lock_guard<std::mutex> lk(wave_mutex_);
    shutdown_ = true;
  }
  wave_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ShardedEngine::worker_loop(std::uint32_t shard_index) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(wave_mutex_);
      wave_cv_.wait(lk, [&] { return shutdown_ || wave_gen_ > seen; });
      if (shutdown_) return;
      seen = wave_gen_;
    }
    try {
      process_wave(shard_index);
    } catch (...) {
      record_worker_error();
    }
    {
      std::lock_guard<std::mutex> lk(wave_mutex_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void ShardedEngine::process_wave(std::uint32_t shard_index) {
  Shard& shard = *shards_[shard_index];
  CaptureTransport& capture = shard.capture;
  for (std::size_t l = 0; l < shard.work.size(); ++l) {
    if (aborted_.load(std::memory_order_relaxed)) return;
    if (speculative_ &&
        shard.pause_requested.load(std::memory_order_acquire)) {
      // The replay thread wants to apply a deferred delivery (or roll a
      // site back) and needs this shard quiescent. Park at the arrival
      // boundary — site state is only ever touched between arrivals.
      std::unique_lock<std::mutex> lk(shard.in_mutex);
      shard.parked = true;
      shard.in_cv.notify_all();
      shard.in_cv.wait(lk, [&] {
        return !shard.pause_requested.load(std::memory_order_acquire) ||
               aborted_.load(std::memory_order_relaxed);
      });
      shard.parked = false;
      if (aborted_.load(std::memory_order_relaxed)) return;
    }
    const WorkItem& item = shard.work[l];
    capture.set_now(item.slot);
    capture.captured.clear();
    item.site->on_element(item.element, item.slot, capture);
    const bool emitted = !capture.captured.empty();
    shard.emitted[l] = emitted ? 1 : 0;
    if (emitted) {
      std::lock_guard<std::mutex> g(shard.out_mutex);
      shard.reports.push_back(std::move(capture.captured));
    }
    capture.captured.clear();
    shard.done.store(l + 1, std::memory_order_release);
    // A reporting arrival pauses the shard until the replay thread has
    // run the exchange — the serial engine's drain-to-quiescence point —
    // so the site's next decision sees the coordinator's reply. In
    // lockstep mode no reply can land inside the wave (the delivery
    // horizon guarantees it arrives at a later barrier; speculative
    // waves defer what does land), so the shard runs straight through.
    if (emitted && !lockstep_) await_replies(shard);
  }
  if (speculative_) {
    // Wake a replay thread waiting in park_shard(): its predicate
    // accepts done == work.size() (a finished worker never touches
    // shard state again), but nothing else would notify it.
    std::lock_guard<std::mutex> g(shard.in_mutex);
    shard.in_cv.notify_all();
  }
}

void ShardedEngine::await_replies(Shard& shard) {
  std::unique_lock<std::mutex> lk(shard.in_mutex);
  for (;;) {
    while (!shard.inbox.empty()) {
      InboundEntry entry = std::move(shard.inbox.front());
      shard.inbox.pop_front();
      if (entry.sentinel) return;
      lk.unlock();
      apply_inbound(entry.msg, shard.capture);
      lk.lock();
    }
    shard.in_cv.wait(lk, [&] {
      return !shard.inbox.empty() || aborted_.load(std::memory_order_relaxed);
    });
    if (aborted_.load(std::memory_order_relaxed) && shard.inbox.empty()) {
      return;
    }
  }
}

void ShardedEngine::apply_inbound(const Message& msg,
                                  CaptureTransport& capture) {
  StreamNode* site = sites_[msg.to];
  capture.captured.clear();
  site->on_message(msg, capture);
  if (!capture.captured.empty()) {
    throw std::logic_error(
        "ShardedEngine: a site sent messages while absorbing a coordinator "
        "reply; that cascade only the serial engine can order");
  }
}

void ShardedEngine::record_worker_error() {
  {
    std::lock_guard<std::mutex> g(error_mutex_);
    if (!worker_error_) worker_error_ = std::current_exception();
  }
  abort_wave();
}

void ShardedEngine::abort_wave() noexcept {
  aborted_.store(true, std::memory_order_relaxed);
  for (auto& shard : shards_) shard->in_cv.notify_all();
}

bool ShardedEngine::on_delivery(const Message& msg, double at) {
  (void)at;
  if (net_.is_coordinator(msg.to)) return false;
  // Any site delivery mutates the target (now, or deferred below), so
  // its wave-start snapshot is stale from here on.
  if (speculative_) snap_valid_[msg.to] = 0;
  if (!wave_running_) {
    // Between waves (slot boundaries, finish, advance_to_slot) the
    // engine is quiescent and delivery proceeds directly to the
    // attached node, as under the serial engine.
    return false;
  }
  if (lockstep_) {
    if (!speculative_) {
      throw std::logic_error(
          "ShardedEngine: a site delivery landed inside a lockstep wave; "
          "the transport's delivery_horizon() certificate is wrong");
    }
    // Playout delay: park the delivery; the replay thread applies it
    // right after the drain returns, at its serial insertion position.
    pending_.push_back(msg);
    ++deferred_;
    return true;
  }
  // Run-ahead mode: route the coordinator's reply to the owning shard's
  // inbox; the paused worker applies it to the site.
  if (msg.to != replay_site_) {
    throw std::logic_error(
        "ShardedEngine: coordinator messaged a site other than the one "
        "whose arrival is being replayed; this protocol is not shardable — "
        "deploy it on the serial engine");
  }
  Shard& shard = *shards_[shard_of_site_[msg.to]];
  {
    std::lock_guard<std::mutex> g(shard.in_mutex);
    shard.inbox.push_back(InboundEntry{msg, false});
    if (metrics_bound_) inbox_depth_hist_.observe(shard.inbox.size());
  }
  // Under wakeup coalescing the worker sleeps until the end-of-exchange
  // sentinel: one notify per exchange instead of one per message.
  if (!coalesce_wakeups_) {
    shard.in_cv.notify_one();
    ++wakeups_;
  }
  return true;
}

void ShardedEngine::park_shard(Shard& shard) {
  shard.pause_requested.store(true, std::memory_order_release);
  std::unique_lock<std::mutex> lk(shard.in_mutex);
  shard.in_cv.wait(lk, [&] {
    return shard.parked ||
           shard.done.load(std::memory_order_acquire) == shard.work.size() ||
           aborted_.load(std::memory_order_relaxed);
  });
  if (aborted_.load(std::memory_order_relaxed)) {
    shard.pause_requested.store(false, std::memory_order_release);
    throw std::runtime_error("ShardedEngine: wave aborted");
  }
}

void ShardedEngine::resume_shard(Shard& shard) {
  shard.pause_requested.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> g(shard.in_mutex);
  shard.in_cv.notify_all();
}

void ShardedEngine::process_pending(std::size_t s) {
  while (!pending_.empty()) {
    const Message msg = pending_.front();
    pending_.pop_front();
    apply_deferred(msg, s);
  }
}

void ShardedEngine::apply_deferred(const Message& msg, std::size_t s) {
  const NodeId site_id = msg.to;
  Shard& shard = *shards_[shard_of_site_[site_id]];
  park_shard(shard);
  const std::size_t done = shard.done.load(std::memory_order_acquire);
  // Journal first: a later rollback of this site (triggered by a
  // still-later delivery) must replay this one at the same position —
  // and if THIS delivery mis-speculated, the merge below replays it
  // from the journal uniformly.
  journal_[site_id].push_back(JournalEntry{s, msg});
  bool mis_speculated = false;
  for (const SiteItem& item : site_items_[site_id]) {
    if (item.local >= done) break;
    if (item.pos >= s) {
      mis_speculated = true;
      break;
    }
  }
  if (mis_speculated) {
    rollback_site(site_id, shard, s, done);
  } else {
    // Every executed occurrence of the site precedes position s, so the
    // serial engine would apply the delivery exactly here: direct apply
    // (the no-send contract of reply absorption holds as in run-ahead).
    rollback_capture_.set_now(current_slot_);
    apply_inbound(msg, rollback_capture_);
  }
  resume_shard(shard);
}

void ShardedEngine::rollback_site(NodeId site_id, Shard& shard,
                                  std::size_t s, std::size_t done) {
  ++rollbacks_;
  if (tracer_ != nullptr) {
    tracer_->instant("engine", "speculation.rollback",
                     static_cast<double>(current_slot_), site_id,
                     {{"pos", static_cast<double>(s)}});
  }
  StreamNode* site = sites_[site_id];
  site->restore_speculation_state(
      std::span<const std::uint8_t>(snap_[site_id]));
  // Re-execute the site's executed wave items merged with its journaled
  // deliveries in serial position order: a delivery at position p lands
  // before every item at positions >= p (journal entries are appended
  // with non-decreasing pos, so a single cursor suffices).
  const auto& items = site_items_[site_id];
  const auto& journal = journal_[site_id];
  std::size_t ji = 0;
  for (const SiteItem& it : items) {
    if (it.local >= done) break;
    while (ji < journal.size() && journal[ji].pos <= it.pos) {
      rollback_capture_.set_now(journal[ji].pos < plan_slot_.size()
                                    ? plan_slot_[journal[ji].pos]
                                    : current_slot_);
      apply_inbound(journal[ji].msg, rollback_capture_);
      ++ji;
    }
    const WorkItem& w = shard.work[it.local];
    rollback_capture_.set_now(w.slot);
    rollback_capture_.captured.clear();
    w.site->on_element(w.element, w.slot, rollback_capture_);
    ++replayed_items_;
    const bool now_emitted = !rollback_capture_.captured.empty();
    const bool was_emitted = shard.emitted[it.local] != 0;
    if (it.pos < s) {
      // Already replayed: its messages are on the wire. The delivery
      // being applied lands at position s > it.pos, so re-execution
      // from the exact snapshot must reproduce the original decision;
      // anything else means the snapshot did not capture the site's
      // full behavioral state.
      if (now_emitted != was_emitted) {
        throw std::logic_error(
            "ShardedEngine: rollback re-execution diverged on an "
            "already-replayed arrival; the site's speculation snapshot "
            "does not round-trip its behavioral state");
      }
      rollback_capture_.captured.clear();
      continue;
    }
    // Not yet consumed by replay: patch the pending report in place.
    // Reports index r = emitted count before this item in shard-local
    // order; local index is monotone in pos, so r >= reports_taken and
    // the consumed prefix (moved-from husks) is never disturbed.
    std::size_t r = 0;
    for (std::size_t k = 0; k < it.local; ++k) {
      r += shard.emitted[k] != 0 ? 1 : 0;
    }
    if (was_emitted && now_emitted) {
      shard.reports[r] = std::move(rollback_capture_.captured);
    } else if (was_emitted && !now_emitted) {
      shard.reports.erase(shard.reports.begin() +
                          static_cast<std::ptrdiff_t>(r));
      shard.emitted[it.local] = 0;
    } else if (!was_emitted && now_emitted) {
      shard.reports.insert(
          shard.reports.begin() + static_cast<std::ptrdiff_t>(r),
          std::move(rollback_capture_.captured));
      shard.emitted[it.local] = 1;
    }
    rollback_capture_.captured.clear();
  }
  // Deliveries past the last executed item (applied direct earlier, or
  // the one being applied now) land after every re-executed item.
  for (; ji < journal.size(); ++ji) {
    rollback_capture_.set_now(journal[ji].pos < plan_slot_.size()
                                  ? plan_slot_[journal[ji].pos]
                                  : current_slot_);
    apply_inbound(journal[ji].msg, rollback_capture_);
  }
}

void ShardedEngine::take_wave_snapshots() {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (site_items_[i].empty() || snap_valid_[i] != 0) continue;
    snap_[i].clear();
    sites_[i]->save_speculation_state(snap_[i]);
    snap_valid_[i] = 1;
    snapshot_bytes_ += snap_[i].size();
  }
}

void ShardedEngine::invalidate_all_snapshots() {
  if (speculative_) snap_valid_.assign(sites_.size(), 0);
}

std::uint64_t ShardedEngine::run(ArrivalSource& source) {
  // External code (chaos controllers, checkpoint restores, direct site
  // pokes) may have mutated sites since the last wave; start clean.
  invalidate_all_snapshots();
  std::optional<Arrival> pending;
  bool end_of_stream = false;
  while (!end_of_stream) {
    // ---- collect one wave ------------------------------------------
    plan_shard_.clear();
    plan_site_.clear();
    plan_slot_.clear();
    for (auto& shard : shards_) {
      shard->work.clear();
      shard->emitted.clear();
      shard->reports.clear();
      shard->reports_taken = 0;
      shard->done.store(0, std::memory_order_relaxed);
    }
    if (speculative_) {
      for (auto& v : site_items_) v.clear();
      for (auto& v : journal_) v.clear();
    }
    Slot wave_last_slot = current_slot_;
    bool have_wave_slot = false;
    Slot wave_slot = 0;
    double wave_limit = 0.0;  // lockstep: admit arrivals with slot < limit
    for (;;) {
      if (!pending) {
        pending = source.next();
        if (!pending) {
          end_of_stream = true;
          break;
        }
      }
      validate(*pending);
      if (pending->slot < wave_last_slot) {
        throw std::invalid_argument("Engine: arrivals must be slot-ordered");
      }
      if (invoke_slot_begin_) {
        // Slot barrier: expiry sweeps run between waves, so a wave never
        // spans slots when per-slot callbacks are on. (This also covers
        // lockstep: the boundary drain cleared everything due through
        // the wave's slot, and in-wave sends land at least the delivery
        // horizon later — at a later barrier.)
        if (have_wave_slot && pending->slot != wave_slot) break;
        wave_slot = pending->slot;
        have_wave_slot = true;
      } else if (lockstep_) {
        // Delivery-horizon barrier: the wave may span slots only as far
        // as nothing — already in flight or sent inside the wave — can
        // become due at any drain the replay performs. Speculation
        // raises the limit to at least first_slot + window: deliveries
        // then CAN land mid-wave, and the replay thread defers + applies
        // them at their serial position (rolling back on a miss).
        if (!have_wave_slot) {
          // First arrival: advance the clock through its slot on the
          // main thread (deliveries are direct here — the serial path),
          // then freeze the wave's delivery window.
          begin_slots_through(pending->slot);
          wave_limit = std::min(
              net_.next_delivery_time(),
              static_cast<double>(pending->slot) + net_.delivery_horizon());
          if (speculative_) {
            wave_limit = std::max(
                wave_limit, static_cast<double>(pending->slot) +
                                static_cast<double>(speculation_window_));
          }
          wave_slot = pending->slot;
          have_wave_slot = true;
        } else if (static_cast<double>(pending->slot) >= wave_limit) {
          // Delivery-horizon stall: the wave closes early because the
          // next arrival would cross the wave's admission window.
          ++lockstep_stalls_;
          if (tracer_ != nullptr) {
            tracer_->instant("engine", "lockstep.stall", wave_limit, 0,
                             {{"next_slot",
                               static_cast<double>(pending->slot)}});
          }
          break;
        }
      }
      wave_last_slot = pending->slot;
      const auto shard = shard_of_site_[pending->site];
      if (speculative_) {
        site_items_[pending->site].push_back(SiteItem{
            plan_shard_.size(), shards_[shard]->work.size()});
      }
      plan_shard_.push_back(shard);
      plan_site_.push_back(pending->site);
      plan_slot_.push_back(pending->slot);
      shards_[shard]->work.push_back(
          WorkItem{sites_[pending->site], pending->element, pending->slot});
      pending.reset();
      if (plan_shard_.size() >= max_wave_) break;
      if (observe_every_ != 0 &&
          (processed_ + plan_shard_.size()) % observe_every_ == 0) {
        break;  // the observer snapshot needs a quiesced barrier here
      }
    }
    // ---- execute it -------------------------------------------------
    if (!plan_shard_.empty()) {
      for (auto& shard : shards_) shard->emitted.resize(shard->work.size());
      run_wave();
      if (observe_every_ != 0 && processed_ % observe_every_ == 0) {
        observe(/*final_snapshot=*/false);
        // Observers may mutate site state (supervisor checkpoints,
        // chaos respawn/resync); every snapshot is suspect after one.
        invalidate_all_snapshots();
      }
    }
  }
  net_.finish();
  observe(/*final_snapshot=*/true);
  return processed_;
}

void ShardedEngine::run_wave() {
  if (invoke_slot_begin_) begin_slots_through(plan_slot_.front());
  ++waves_;
  if (metrics_bound_) wave_size_hist_.observe(plan_shard_.size());
  if (speculative_) take_wave_snapshots();
  wave_running_ = true;
  {
    std::lock_guard<std::mutex> lk(wave_mutex_);
    workers_done_ = 0;
    ++wave_gen_;
  }
  wave_cv_.notify_all();
  std::exception_ptr replay_error;
  try {
    replay();
  } catch (...) {
    replay_error = std::current_exception();
    abort_wave();
  }
  {
    std::unique_lock<std::mutex> lk(wave_mutex_);
    done_cv_.wait(lk, [&] { return workers_done_ == workers_.size(); });
  }
  wave_running_ = false;
  const auto span = static_cast<std::uint64_t>(
      plan_slot_.back() - plan_slot_.front() + 1);
  wave_slots_total_ += span;
  if (metrics_bound_) wave_slots_hist_.observe(span);
  if (speculative_) {
    // Sites that executed arrivals this wave have moved past their
    // snapshots (sites that only received deliveries were invalidated
    // at the sink). Untouched sites keep their snapshots across waves.
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      if (!site_items_[i].empty()) snap_valid_[i] = 0;
    }
    pending_.clear();
  }
  if (tracer_ != nullptr) {
    tracer_->complete("engine", "wave",
                      static_cast<double>(plan_slot_.front()),
                      static_cast<double>(plan_slot_.back()), 0,
                      {{"arrivals",
                        static_cast<double>(plan_shard_.size())},
                       {"wave", static_cast<double>(waves_)}});
  }
  std::exception_ptr worker_error;
  {
    std::lock_guard<std::mutex> g(error_mutex_);
    worker_error = std::exchange(worker_error_, nullptr);
    aborted_.store(false, std::memory_order_relaxed);
  }
  if (worker_error) std::rethrow_exception(worker_error);
  if (replay_error) std::rethrow_exception(replay_error);
}

void ShardedEngine::replay() {
  const std::size_t wave_size = plan_shard_.size();
  std::vector<std::size_t> cursor(shards_.size(), 0);
  std::vector<std::size_t> done_cache(shards_.size(), 0);
  for (std::size_t s = 0; s < wave_size; ++s) {
    if (plan_slot_[s] != current_slot_) {
      // Mirrors the serial engine's per-arrival clock advance (slot
      // semantics are off here, so this is set_now + drain only). This
      // runs BEFORE the position's exchange, exactly as serial applies
      // deliveries due by an arrival's slot before the arrival itself;
      // deliveries the sink deferred during the drain are applied now
      // with s as their insertion position (they precede every arrival
      // at positions >= s).
      current_slot_ = plan_slot_[s];
      net_.set_now(current_slot_);
      net_.drain();
      if (speculative_) process_pending(s);
    }
    const std::uint32_t j = plan_shard_[s];
    Shard& shard = *shards_[j];
    const std::size_t l = cursor[j]++;
    while (done_cache[j] <= l) {
      done_cache[j] = shard.done.load(std::memory_order_acquire);
      if (done_cache[j] <= l) {
        if (aborted_.load(std::memory_order_relaxed)) {
          throw std::runtime_error("ShardedEngine: wave aborted");
        }
        std::this_thread::yield();
      }
    }
    if (shard.emitted[l]) {
      std::vector<Message> msgs;
      {
        std::lock_guard<std::mutex> g(shard.out_mutex);
        msgs = std::move(shard.reports[shard.reports_taken++]);
      }
      replay_site_ = plan_site_[s];
      for (const Message& msg : msgs) net_.send(msg);
      net_.drain();
      // Lockstep post-send drains deliver nothing (every send is at
      // least the horizon away), so this is usually empty; it keeps the
      // serial drain-after-arrival boundary exact regardless.
      if (speculative_) process_pending(s + 1);
      if (!lockstep_) {
        // End of this arrival's exchange: wake the paused worker. In
        // lockstep mode the worker never paused (the drain above cannot
        // deliver anything before the next barrier), so no handshake.
        {
          std::lock_guard<std::mutex> g(shard.in_mutex);
          shard.inbox.push_back(InboundEntry{Message{}, true});
        }
        shard.in_cv.notify_one();
        ++wakeups_;
      }
    }
    ++processed_;
  }
}

}  // namespace dds::sim
