// Reusable ArrivalSource adapters.
//
// Every test and bench that drives a deployment needs the same two
// shapes: "replay this fixed arrival list" and "replay one slot's
// arrivals" (the drive pattern of query-at-every-slot suites, which
// run one slot, query, run the next). They live here once instead of
// as per-file copies.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "sim/engine.h"

namespace dds::sim {

/// Replays a fixed arrival sequence (owned; single-pass like every
/// ArrivalSource — construct a fresh one per run).
class ListSource final : public ArrivalSource {
 public:
  explicit ListSource(std::vector<Arrival> arrivals)
      : arrivals_(std::move(arrivals)) {}

  std::optional<Arrival> next() override {
    if (pos_ >= arrivals_.size()) return std::nullopt;
    return arrivals_[pos_++];
  }

 private:
  std::vector<Arrival> arrivals_;
  std::size_t pos_ = 0;
};

/// Replays one slot's arrivals, given as (site, element) pairs. Holds a
/// reference — the pair list must outlive the source (it always does in
/// the run-one-slot-then-query loop this serves).
class SlotSource final : public ArrivalSource {
 public:
  SlotSource(Slot slot,
             const std::vector<std::pair<NodeId, std::uint64_t>>& arrivals)
      : slot_(slot), arrivals_(arrivals) {}

  std::optional<Arrival> next() override {
    if (pos_ >= arrivals_.size()) return std::nullopt;
    const auto& [site, element] = arrivals_[pos_++];
    return Arrival{slot_, site, element};
  }

 private:
  Slot slot_;
  const std::vector<std::pair<NodeId, std::uint64_t>>& arrivals_;
  std::size_t pos_ = 0;
};

/// Replays a span of elements, all arriving at one site in one slot —
/// the adapter behind Deployment::update_batch. Holds a view; the span
/// must outlive the source (it does: the source lives only for the
/// run_batched call).
class SpanSource final : public ArrivalSource {
 public:
  SpanSource(Slot slot, NodeId site, std::span<const std::uint64_t> elements)
      : slot_(slot), site_(site), elements_(elements) {}

  std::optional<Arrival> next() override {
    if (pos_ >= elements_.size()) return std::nullopt;
    return Arrival{slot_, site_, elements_[pos_++]};
  }

 private:
  Slot slot_;
  NodeId site_;
  std::span<const std::uint64_t> elements_;
  std::size_t pos_ = 0;
};

}  // namespace dds::sim
