#include "sim/bus.h"

#include <stdexcept>

namespace dds::sim {

BusCounters BusCounters::operator-(const BusCounters& rhs) const noexcept {
  BusCounters out;
  out.total = total - rhs.total;
  out.site_to_coordinator = site_to_coordinator - rhs.site_to_coordinator;
  out.coordinator_to_site = coordinator_to_site - rhs.coordinator_to_site;
  out.bytes = bytes - rhs.bytes;
  for (std::size_t i = 0; i < by_type.size(); ++i) {
    out.by_type[i] = by_type[i] - rhs.by_type[i];
  }
  return out;
}

Bus::Bus(std::uint32_t num_sites)
    : num_sites_(num_sites),
      nodes_(num_sites + 1, nullptr),
      sent_by_(num_sites + 1, 0),
      received_by_(num_sites + 1, 0) {}

void Bus::attach(NodeId id, Node* node) {
  if (id >= nodes_.size()) {
    throw std::out_of_range("Bus::attach: node id out of range");
  }
  nodes_[id] = node;
}

void Bus::send(const Message& msg) {
  if (msg.from >= nodes_.size() || msg.to >= nodes_.size()) {
    throw std::out_of_range("Bus::send: bad endpoint");
  }
  ++counters_.total;
  counters_.bytes += Message::wire_bytes();
  counters_.by_type[static_cast<std::size_t>(msg.type)] += 1;
  if (msg.from == coordinator_id()) {
    ++counters_.coordinator_to_site;
  } else {
    ++counters_.site_to_coordinator;
  }
  ++sent_by_[msg.from];
  if (tap_) tap_(msg);
  queue_.push_back(msg);
}

void Bus::drain() {
  if (draining_) return;  // re-entrant drain: outer loop finishes the queue
  draining_ = true;
  while (!queue_.empty()) {
    const Message msg = queue_.front();
    queue_.pop_front();
    ++received_by_[msg.to];
    Node* node = nodes_[msg.to];
    if (node == nullptr) {
      draining_ = false;
      throw std::logic_error("Bus::drain: message to unattached node");
    }
    node->on_message(msg, *this);
  }
  draining_ = false;
}

std::uint64_t Bus::sent_by(NodeId id) const {
  if (id >= sent_by_.size()) throw std::out_of_range("Bus::sent_by");
  return sent_by_[id];
}

std::uint64_t Bus::received_by(NodeId id) const {
  if (id >= received_by_.size()) throw std::out_of_range("Bus::received_by");
  return received_by_[id];
}

}  // namespace dds::sim
