#include "sim/bus.h"

namespace dds::sim {

void Bus::send(const Message& msg) {
  check_endpoints(msg);
  note_send(msg);
  count_wire(msg, Message::wire_bytes());
  queue_.push_back(msg);
}

void Bus::drain() {
  if (draining_) return;  // re-entrant drain: outer loop finishes the queue
  draining_ = true;
  try {
    while (!queue_.empty()) {
      const Message msg = queue_.front();
      queue_.pop_front();
      deliver(msg);
    }
  } catch (...) {
    draining_ = false;
    throw;
  }
  draining_ = false;
}

}  // namespace dds::sim
