#include "sim/engine.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "sim/serial_engine.h"
#include "sim/sharded_engine.h"

namespace dds::sim {

Engine::Engine(net::Transport& net, std::vector<StreamNode*> sites,
               bool invoke_slot_begin)
    : net_(net), sites_(std::move(sites)),
      invoke_slot_begin_(invoke_slot_begin) {
  if (sites_.size() != net_.num_sites()) {
    throw std::invalid_argument("Engine: site count mismatch with transport");
  }
}

void Engine::set_observer(std::uint64_t observe_every,
                          std::function<void(const Progress&)> observer) {
  observe_every_ = observe_every;
  observer_ = std::move(observer);
}

void Engine::bind_observability(obs::MetricsRegistry* registry,
                                obs::Tracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) return;
  registry->counter("engine.arrivals", &processed_);
  registry->gauge("engine.threads",
                  [this] { return static_cast<double>(num_threads()); });
  registry->gauge("engine.slot",
                  [this] { return static_cast<double>(current_slot_); });
}

void Engine::begin_slots_through(Slot slot) {
  if (!invoke_slot_begin_) {
    current_slot_ = slot;
    net_.set_now(current_slot_);
    // In-flight traffic due by this slot lands before the next arrival.
    net_.drain();
    return;
  }
  while (current_slot_ < slot) {
    ++current_slot_;
    net_.set_now(current_slot_);
    // Traffic due at the slot boundary is delivered before any site runs
    // its expiry logic for the slot (a no-op on the zero-delay Bus,
    // whose queue is always empty here).
    net_.drain();
    for (auto* site : sites_) {
      site->on_slot_begin(current_slot_, net_);
      net_.drain();
    }
  }
}

void Engine::validate(const Arrival& arrival) const {
  if (arrival.slot < current_slot_) {
    throw std::invalid_argument("Engine: arrivals must be slot-ordered");
  }
  if (arrival.site >= sites_.size()) {
    throw std::out_of_range("Engine: arrival for unknown site");
  }
}

std::unique_ptr<Engine> make_engine(net::Transport& net,
                                    std::vector<StreamNode*> sites,
                                    bool invoke_slot_begin,
                                    const EngineConfig& config) {
  // Every selection outcome gets a queryable reason (Engine::mode_reason)
  // so benches can print WHY a deployment landed on serial, lockstep, or
  // speculative execution instead of silently falling back.
  const char* serial_reason = nullptr;
  if (config.num_threads <= 1) {
    serial_reason = "serial: num_threads == 1";
  } else if (sites.size() < 2) {
    serial_reason = "serial: fewer than two sites";
  } else if (!net.synchronous() && net.delivery_horizon() <= 0.0) {
    serial_reason = "serial: zero-horizon wire (no positive delivery bound)";
  }
  if (serial_reason != nullptr) {
    auto engine = std::make_unique<SerialEngine>(net, std::move(sites),
                                                 invoke_slot_begin);
    engine->set_mode_reason(serial_reason);
    return engine;
  }

  const char* sharded_reason;
  EngineConfig effective = config;
  if (net.synchronous()) {
    sharded_reason = "sharded: run-ahead (synchronous wire)";
    effective.speculation_window = 0;
  } else if (config.speculation_window == 0) {
    sharded_reason = "sharded: lockstep (delivery-horizon waves)";
  } else if (invoke_slot_begin) {
    sharded_reason = "sharded: lockstep (slot-begin protocol; speculation off)";
    effective.speculation_window = 0;
  } else {
    bool all_capable = true;
    for (const auto* site : sites) {
      if (!site->speculation_capable()) {
        all_capable = false;
        break;
      }
    }
    if (all_capable) {
      sharded_reason = "sharded: speculative lockstep";
    } else {
      sharded_reason = "sharded: lockstep (site lacks speculation snapshots)";
      effective.speculation_window = 0;
    }
  }
  auto engine = std::make_unique<ShardedEngine>(net, std::move(sites),
                                                invoke_slot_begin, effective);
  engine->set_mode_reason(sharded_reason);
  return engine;
}

}  // namespace dds::sim
