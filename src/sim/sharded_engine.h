// Multi-threaded execution engine, bit-identical to SerialEngine.
//
// Sites are partitioned across worker threads (site i -> shard
// i % num_threads), each with its own arrival queue. The stream is
// consumed in waves: the main thread buffers a batch of arrivals (one
// slot per wave when per-slot expiry callbacks are on; up to
// EngineConfig::max_wave otherwise), scatters them to the shards, and
// then *replays* the wave in global arrival order while the workers run
// ahead.
//
// Why this is bit-identical to the serial engine:
//  * Site-local work (hashing, threshold tests, treap updates) runs on
//    the shard that owns the site, against a capture transport that
//    records outbound messages instead of delivering them. Each site
//    sees its arrivals in stream order, so its state evolves exactly as
//    under serial execution.
//  * The main thread walks the wave in global arrival order and replays
//    each arrival's captured messages on the REAL transport — so the
//    coordinator processes reports in the serial order, and every
//    counter (total, per type, per node, bytes) increments in the
//    serial order with the serial values.
//  * Coordinator replies are routed back to the owning shard and
//    applied to the site before that site's next arrival: a shard that
//    emits a report blocks until the replay thread has finished that
//    arrival's exchange (the serial engine's drain-to-quiescence point).
//    Between two reports a site's decisions depend only on its own
//    state, so running ahead of the replay cursor is safe.
//
// The scheme requires the paper's protocol shape: coordinator traffic
// in response to a report goes only to the reporting site (true for the
// infinite, with-replacement, sliding, centralized, DRS, and full-sync
// protocols; NOT for the broadcast baseline, which therefore deploys on
// the serial engine). A violation is detected at delivery time and
// raises std::logic_error rather than silently diverging.
//
// Three wire modes share the replay machinery:
//  * Run-ahead (synchronous transports): a report's reply lands in the
//    same drain, so a reporting shard pauses until the replay thread
//    has run that arrival's exchange, then continues.
//  * Lockstep (realistic wires with a positive delivery horizon): on a
//    net::SimNetwork no send at time t can be delivered strictly before
//    t + horizon (Transport::delivery_horizon()), so NOTHING lands
//    mid-wave — the wave barrier is the delivery horizon. Waves are
//    sized so every drain inside them is empty: one slot per wave when
//    per-slot callbacks are on (the boundary drain already cleared
//    everything due), and otherwise capped strictly below
//    min(next_delivery_time, first_slot + horizon). Workers therefore
//    never pause for replies; all deliveries (coordinator reports,
//    replies, retransmissions, batch flushes) happen either on the
//    replay thread in the serial order or between waves on the main
//    thread with direct delivery — making traces, counters, and RNG
//    consumption bit-identical to SerialEngine on the same network. A
//    mid-wave site delivery would mean the horizon certificate was
//    wrong and raises std::logic_error. Wires with no positive horizon
//    (zero latency, normal jitter's zero clamp) fall back to serial in
//    make_engine().
//  * Speculative lockstep (lockstep + EngineConfig::speculation_window
//    > 0): the wave limit is raised to at least first_slot + window, so
//    waves no longer collapse to the delivery horizon on low-latency
//    wires — the playout-delay idea from networked-game lockstep
//    engines. Deliveries CAN now land mid-wave; the engine (installed
//    as the transport's DeliverySink) defers each one into a playout
//    queue instead of letting it interrupt the wave, and the replay
//    thread applies it at its exact serial position: a delivery landing
//    at replay position s precedes every arrival at positions >= s.
//    Before applying, the target site's shard is parked (a cheap
//    mutex/condvar handshake — mid-wave deliveries are rare by
//    construction), so site state is never touched concurrently. If the
//    site has already executed an arrival at position >= s, the
//    speculation was wrong: the site is restored from its wave-start
//    byte snapshot (StreamNode::save/restore_speculation_state) and its
//    wave items are re-executed merged with the journaled deliveries in
//    serial position order. Re-executed arrivals at positions the
//    replay thread has already shipped must reproduce their messages
//    exactly (they were unaffected by the delivery — enforced, not
//    assumed); arrivals at positions >= s have their pending report
//    patched in place before replay consumes it. Outputs, counters, and
//    wire traces therefore stay bit-identical to SerialEngine.
//    Speculation requires every site to be speculation_capable() and a
//    protocol without per-slot callbacks; make_engine() downgrades to
//    plain lockstep otherwise and reports why via mode_reason().
//
// Slot-boundary work (on_slot_begin expiry sweeps, advance_to_slot) and
// end-of-stream finish() run on the main thread between waves with
// direct delivery — exactly the serial code path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "sim/engine.h"

namespace dds::sim {

class ShardedEngine final : public Engine, private net::DeliverySink {
 public:
  ShardedEngine(net::Transport& net, std::vector<StreamNode*> sites,
                bool invoke_slot_begin, const EngineConfig& config);
  ~ShardedEngine() override;

  std::uint64_t run(ArrivalSource& source) override;

  const char* name() const noexcept override { return "sharded"; }
  std::uint32_t num_threads() const noexcept override {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// Base registrations plus the wave/stall/wakeup counters, the
  /// wave-size / inbox-depth / wave-slot-span histograms, and the
  /// engine.speculation.* counters (all "engine."-prefixed).
  void bind_observability(obs::MetricsRegistry* registry,
                          obs::Tracer* tracer) override;

  // ---- speculation statistics (for abl17 and the fuzz tests) ---------
  /// True when this engine speculates past the delivery horizon.
  bool speculative() const noexcept { return speculative_; }
  /// Wave barriers crossed so far.
  std::uint64_t waves() const noexcept { return waves_; }
  /// Sum over waves of the slot span (last - first + 1); mean wave
  /// length in slots is wave_slots_total() / waves().
  std::uint64_t wave_slots_total() const noexcept { return wave_slots_total_; }
  /// Mis-speculations: deliveries that forced a site rollback.
  std::uint64_t rollbacks() const noexcept { return rollbacks_; }
  /// Site arrivals re-executed by rollbacks.
  std::uint64_t replayed_items() const noexcept { return replayed_items_; }
  /// Deliveries deferred into the playout queue mid-wave.
  std::uint64_t deferred_deliveries() const noexcept { return deferred_; }
  /// Bytes serialized into wave-start speculation snapshots.
  std::uint64_t snapshot_bytes() const noexcept { return snapshot_bytes_; }

 private:
  /// Records a site's outbound messages instead of delivering them; the
  /// replay thread puts them on the real wire in global arrival order.
  class CaptureTransport final : public net::Transport {
   public:
    CaptureTransport(std::uint32_t num_sites, std::uint32_t num_coordinators)
        : Transport(num_sites, num_coordinators) {}
    void send(const Message& msg) override { captured.push_back(msg); }
    void drain() override {}
    std::vector<Message> captured;
  };

  struct WorkItem {
    StreamNode* site = nullptr;
    std::uint64_t element = 0;
    Slot slot = 0;
  };

  struct InboundEntry {
    Message msg;
    bool sentinel = false;  ///< end of one arrival's coordinator traffic
  };

  struct alignas(64) Shard {
    Shard(std::uint32_t num_sites, std::uint32_t num_coordinators)
        : capture(num_sites, num_coordinators) {}
    // Wave input, written by the main thread before the wave starts.
    std::vector<WorkItem> work;
    // Per-arrival outputs: emitted[l] set iff arrival l sent messages,
    // published by the release store on `done` (count of finished
    // arrivals) and read by the replay thread after an acquire load.
    std::vector<std::uint8_t> emitted;
    // The wave progress counter: stored by the worker after every
    // arrival, spun on by the replay thread. Aligned to its own cache
    // line so the replay thread's polling never collides with the
    // worker's writes to the surrounding wave state (and padded on the
    // far side by the alignment of `out_mutex` below).
    alignas(64) std::atomic<std::size_t> done{0};
    alignas(64) std::mutex out_mutex;
    // Message batches of the wave's reporting arrivals, in local arrival
    // order; replay consumes them with the reports_taken cursor (the
    // emitted[] bitmap says which arrivals contributed one).
    std::vector<std::vector<Message>> reports;
    std::size_t reports_taken = 0;  // replay-side cursor
    std::mutex in_mutex;
    std::condition_variable in_cv;
    std::deque<InboundEntry> inbox;
    // Speculation park handshake: the replay thread raises
    // pause_requested before touching any site this shard owns; the
    // worker parks (parked = true, guarded by in_mutex) at its next
    // arrival boundary and waits until the flag drops. A worker that
    // has finished its wave never parks — done == work.size() is an
    // equally safe state for the replay thread to proceed under.
    std::atomic<bool> pause_requested{false};
    bool parked = false;  // guarded by in_mutex
    CaptureTransport capture;
  };

  /// One (position, shard-local index) occurrence of a site in the
  /// current wave's plan, for speculation bookkeeping. Both coordinates
  /// are ascending along a site's vector: work is appended in plan
  /// order.
  struct SiteItem {
    std::size_t pos = 0;    ///< global plan position
    std::size_t local = 0;  ///< index into the owning shard's work[]
  };

  /// A mid-wave delivery applied to a site, journaled so a LATER
  /// rollback of the same site replays it at the right position.
  struct JournalEntry {
    std::size_t pos = 0;  ///< serial insertion position (see on_delivery)
    Message msg;
  };

  void worker_loop(std::uint32_t shard_index);
  void process_wave(std::uint32_t shard_index);
  void await_replies(Shard& shard);
  void apply_inbound(const Message& msg, CaptureTransport& capture);
  void run_wave();
  void replay();
  void record_worker_error();
  void abort_wave() noexcept;

  // ---- speculation ----------------------------------------------------
  /// net::DeliverySink: coordinator traffic always passes through;
  /// site deliveries dispatch directly between waves, are deferred into
  /// the playout queue inside speculative waves, route to shard inboxes
  /// in run-ahead mode, and are a horizon-certificate violation inside
  /// plain lockstep waves.
  bool on_delivery(const Message& msg, double at) override;
  /// Applies every delivery the sink deferred during the drain that just
  /// returned, at serial insertion position `s`.
  void process_pending(std::size_t s);
  void apply_deferred(const Message& msg, std::size_t s);
  void park_shard(Shard& shard);
  void resume_shard(Shard& shard);
  /// Restores `site_id` from its wave-start snapshot and re-executes its
  /// executed wave items merged with its journaled deliveries in serial
  /// position order, patching not-yet-consumed reports in place.
  void rollback_site(NodeId site_id, Shard& shard, std::size_t s,
                     std::size_t done);
  void take_wave_snapshots();
  void invalidate_all_snapshots();

  std::size_t max_wave_;
  /// Realistic-wire mode: workers never pause for replies; waves are
  /// bounded by the transport's delivery horizon instead of slots'
  /// being synchronous (see the file comment).
  bool lockstep_ = false;
  /// Lockstep with delivery-time speculation: waves run at least
  /// speculation_window_ slots past their first slot; mid-wave
  /// deliveries are deferred and applied at their serial position, with
  /// per-site rollback on mis-speculation (see the file comment).
  bool speculative_ = false;
  std::uint32_t speculation_window_ = 0;
  /// One replay->worker notify per exchange instead of per message
  /// (EngineConfig::coalesce_wakeups; run-ahead mode only).
  bool coalesce_wakeups_ = true;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::uint32_t> shard_of_site_;
  std::vector<std::thread> workers_;

  // Wave handshake.
  std::mutex wave_mutex_;
  std::condition_variable wave_cv_;
  std::condition_variable done_cv_;
  std::uint64_t wave_gen_ = 0;
  std::uint32_t workers_done_ = 0;
  bool shutdown_ = false;

  // Replay-order plan for the current wave (main thread only).
  std::vector<std::uint32_t> plan_shard_;
  std::vector<NodeId> plan_site_;
  std::vector<Slot> plan_slot_;
  bool wave_running_ = false;      // sink: defer/enqueue vs direct delivery
  NodeId replay_site_ = kNoNode;   // site whose arrival is being replayed

  // Speculation state (main/replay thread only, except where noted).
  std::vector<std::vector<SiteItem>> site_items_;     // per site, per wave
  std::vector<std::vector<JournalEntry>> journal_;    // per site, per wave
  std::vector<std::vector<std::uint8_t>> snap_;       // wave-start images
  /// snap_[i] is current iff snap_valid_[i]; invalidated whenever site i
  /// executes arrivals, receives a delivery, or an observer ran (it may
  /// mutate sites — chaos respawn/resync hooks do).
  std::vector<std::uint8_t> snap_valid_;
  std::deque<Message> pending_;  ///< playout-delay queue (one drain's worth)
  /// Scratch capture for deferred applies and rollback re-execution —
  /// re-executed arrivals' messages are compared/patched, never re-sent
  /// from here.
  CaptureTransport rollback_capture_;

  std::atomic<bool> aborted_{false};
  std::mutex error_mutex_;
  std::exception_ptr worker_error_;

  // Engine-strategy observability ("engine." prefix, never compared
  // across engines). All cells are written on the main/replay thread
  // only, so no synchronization is needed beyond what the wave
  // handshake already provides.
  std::uint64_t waves_ = 0;            ///< wave barriers crossed
  std::uint64_t lockstep_stalls_ = 0;  ///< waves cut by the horizon limit
  std::uint64_t wakeups_ = 0;          ///< replay->worker notifies
  std::uint64_t wave_slots_total_ = 0; ///< sum of per-wave slot spans
  std::uint64_t rollbacks_ = 0;        ///< mis-speculated deliveries
  std::uint64_t replayed_items_ = 0;   ///< arrivals re-executed by rollbacks
  std::uint64_t deferred_ = 0;         ///< deliveries deferred mid-wave
  std::uint64_t snapshot_bytes_ = 0;   ///< speculation snapshot volume
  bool metrics_bound_ = false;
  obs::Histogram wave_size_hist_;    ///< arrivals per wave
  obs::Histogram inbox_depth_hist_;  ///< shard inbox depth at enqueue
  obs::Histogram wave_slots_hist_;   ///< slot span per wave
};

}  // namespace dds::sim
