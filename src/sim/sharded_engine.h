// Multi-threaded execution engine, bit-identical to SerialEngine.
//
// Sites are partitioned across worker threads (site i -> shard
// i % num_threads), each with its own arrival queue. The stream is
// consumed in waves: the main thread buffers a batch of arrivals (one
// slot per wave when per-slot expiry callbacks are on; up to
// EngineConfig::max_wave otherwise), scatters them to the shards, and
// then *replays* the wave in global arrival order while the workers run
// ahead.
//
// Why this is bit-identical to the serial engine:
//  * Site-local work (hashing, threshold tests, treap updates) runs on
//    the shard that owns the site, against a capture transport that
//    records outbound messages instead of delivering them. Each site
//    sees its arrivals in stream order, so its state evolves exactly as
//    under serial execution.
//  * The main thread walks the wave in global arrival order and replays
//    each arrival's captured messages on the REAL transport — so the
//    coordinator processes reports in the serial order, and every
//    counter (total, per type, per node, bytes) increments in the
//    serial order with the serial values.
//  * Coordinator replies are routed back to the owning shard and
//    applied to the site before that site's next arrival: a shard that
//    emits a report blocks until the replay thread has finished that
//    arrival's exchange (the serial engine's drain-to-quiescence point).
//    Between two reports a site's decisions depend only on its own
//    state, so running ahead of the replay cursor is safe.
//
// The scheme requires the paper's protocol shape: coordinator traffic
// in response to a report goes only to the reporting site (true for the
// infinite, with-replacement, sliding, centralized, DRS, and full-sync
// protocols; NOT for the broadcast baseline, which therefore deploys on
// the serial engine). A violation is detected at delivery time and
// raises std::logic_error rather than silently diverging.
//
// Two wire modes share the replay machinery:
//  * Run-ahead (synchronous transports): a report's reply lands in the
//    same drain, so a reporting shard pauses until the replay thread
//    has run that arrival's exchange, then continues.
//  * Lockstep (realistic wires with a positive delivery horizon): on a
//    net::SimNetwork no send at time t can be delivered at or before
//    t + horizon (Transport::delivery_horizon()), so NOTHING lands
//    mid-wave — the wave barrier is the delivery horizon. Waves are
//    sized so every drain inside them is empty: one slot per wave when
//    per-slot callbacks are on (the boundary drain already cleared
//    everything due), and otherwise capped strictly below
//    min(next_delivery_time, first_slot + horizon). Workers therefore
//    never pause for replies; all deliveries (coordinator reports,
//    replies, retransmissions, batch flushes) happen either on the
//    replay thread in the serial order or between waves on the main
//    thread with direct delivery — making traces, counters, and RNG
//    consumption bit-identical to SerialEngine on the same network. A
//    mid-wave site delivery would mean the horizon certificate was
//    wrong and raises std::logic_error. Wires with no positive horizon
//    (zero latency, normal jitter's zero clamp) fall back to serial in
//    make_engine().
//
// Slot-boundary work (on_slot_begin expiry sweeps, advance_to_slot) and
// end-of-stream finish() run on the main thread between waves with
// direct delivery — exactly the serial code path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "sim/engine.h"

namespace dds::sim {

class ShardedEngine final : public Engine {
 public:
  ShardedEngine(net::Transport& net, std::vector<StreamNode*> sites,
                bool invoke_slot_begin, const EngineConfig& config);
  ~ShardedEngine() override;

  std::uint64_t run(ArrivalSource& source) override;

  const char* name() const noexcept override { return "sharded"; }
  std::uint32_t num_threads() const noexcept override {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// Base registrations plus the wave/stall/wakeup counters and the
  /// wave-size / inbox-depth histograms (all "engine."-prefixed).
  void bind_observability(obs::MetricsRegistry* registry,
                          obs::Tracer* tracer) override;

 private:
  /// Records a site's outbound messages instead of delivering them; the
  /// replay thread puts them on the real wire in global arrival order.
  class CaptureTransport final : public net::Transport {
   public:
    CaptureTransport(std::uint32_t num_sites, std::uint32_t num_coordinators)
        : Transport(num_sites, num_coordinators) {}
    void send(const Message& msg) override { captured.push_back(msg); }
    void drain() override {}
    std::vector<Message> captured;
  };

  /// Stands in for a site on the real transport: during a wave it
  /// forwards coordinator deliveries to the owning shard's inbox;
  /// between waves (slot boundaries, finish) it delivers directly.
  class SiteProxy final : public Node {
   public:
    SiteProxy(ShardedEngine* engine, StreamNode* site, std::uint32_t shard)
        : engine_(engine), site_(site), shard_(shard) {}
    void on_message(const Message& msg, net::Transport& net) override {
      engine_->deliver_to_site(shard_, site_, msg, net);
    }
    std::size_t state_size() const noexcept override {
      return site_->state_size();
    }

   private:
    ShardedEngine* engine_;
    StreamNode* site_;
    std::uint32_t shard_;
  };

  struct WorkItem {
    StreamNode* site = nullptr;
    std::uint64_t element = 0;
    Slot slot = 0;
  };

  struct InboundEntry {
    Message msg;
    bool sentinel = false;  ///< end of one arrival's coordinator traffic
  };

  struct alignas(64) Shard {
    Shard(std::uint32_t num_sites, std::uint32_t num_coordinators)
        : capture(num_sites, num_coordinators) {}
    // Wave input, written by the main thread before the wave starts.
    std::vector<WorkItem> work;
    // Per-arrival outputs: emitted[l] set iff arrival l sent messages,
    // published by the release store on `done` (count of finished
    // arrivals) and read by the replay thread after an acquire load.
    std::vector<std::uint8_t> emitted;
    // The wave progress counter: stored by the worker after every
    // arrival, spun on by the replay thread. Aligned to its own cache
    // line so the replay thread's polling never collides with the
    // worker's writes to the surrounding wave state (and padded on the
    // far side by the alignment of `out_mutex` below).
    alignas(64) std::atomic<std::size_t> done{0};
    alignas(64) std::mutex out_mutex;
    // Message batches of the wave's reporting arrivals, in local arrival
    // order; replay consumes them with the reports_taken cursor (the
    // emitted[] bitmap says which arrivals contributed one).
    std::vector<std::vector<Message>> reports;
    std::size_t reports_taken = 0;  // replay-side cursor
    std::mutex in_mutex;
    std::condition_variable in_cv;
    std::deque<InboundEntry> inbox;
    CaptureTransport capture;
  };

  void worker_loop(std::uint32_t shard_index);
  void process_wave(std::uint32_t shard_index);
  void await_replies(Shard& shard);
  void apply_inbound(const Message& msg, CaptureTransport& capture);
  void run_wave();
  void replay();
  void deliver_to_site(std::uint32_t shard, StreamNode* site,
                       const Message& msg, net::Transport& net);
  void record_worker_error();
  void abort_wave() noexcept;

  std::size_t max_wave_;
  /// Realistic-wire mode: workers never pause for replies; waves are
  /// bounded by the transport's delivery horizon instead of slots'
  /// being synchronous (see the file comment).
  bool lockstep_ = false;
  /// One replay->worker notify per exchange instead of per message
  /// (EngineConfig::coalesce_wakeups; run-ahead mode only).
  bool coalesce_wakeups_ = true;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<SiteProxy>> proxies_;
  std::vector<std::uint32_t> shard_of_site_;
  std::vector<std::thread> workers_;

  // Wave handshake.
  std::mutex wave_mutex_;
  std::condition_variable wave_cv_;
  std::condition_variable done_cv_;
  std::uint64_t wave_gen_ = 0;
  std::uint32_t workers_done_ = 0;
  bool shutdown_ = false;

  // Replay-order plan for the current wave (main thread only).
  std::vector<std::uint32_t> plan_shard_;
  std::vector<NodeId> plan_site_;
  std::vector<Slot> plan_slot_;
  bool wave_running_ = false;      // proxies: enqueue vs direct delivery
  NodeId replay_site_ = kNoNode;   // site whose arrival is being replayed

  std::atomic<bool> aborted_{false};
  std::mutex error_mutex_;
  std::exception_ptr worker_error_;

  // Engine-strategy observability ("engine." prefix, never compared
  // across engines). All cells are written on the main/replay thread
  // only, so no synchronization is needed beyond what the wave
  // handshake already provides.
  std::uint64_t waves_ = 0;            ///< wave barriers crossed
  std::uint64_t lockstep_stalls_ = 0;  ///< waves cut by the horizon limit
  std::uint64_t wakeups_ = 0;          ///< replay->worker notifies
  bool metrics_bound_ = false;
  obs::Histogram wave_size_hist_;    ///< arrivals per wave
  obs::Histogram inbox_depth_hist_;  ///< shard inbox depth at enqueue
};

}  // namespace dds::sim
