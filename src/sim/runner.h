// Historical home of the simulation driver. The driver is now the
// pluggable engine layer (sim/engine.h): the Engine interface plus
// SerialEngine (this file's former Runner loop) and ShardedEngine
// (multi-threaded site batches). `Runner` remains as an alias for the
// serial engine so existing call sites keep compiling.
#pragma once

#include "sim/engine.h"
#include "sim/serial_engine.h"

namespace dds::sim {

using Runner = SerialEngine;

}  // namespace dds::sim
