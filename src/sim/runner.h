// Drives a simulation: feeds an arrival sequence to the sites, advances
// the slot clock, and delivers transport traffic interleaved with the
// arrivals. On the zero-delay Bus this is the synchronous execution
// model of the paper (drain to quiescence after every event); on a
// net::SimNetwork the same loop becomes an event-driven clock advance —
// each slot boundary releases the traffic due by then, and finish()
// runs the queue dry after the stream ends.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/transport.h"
#include "sim/node.h"

namespace dds::sim {

/// One stream observation: element `element` arrives at site `site`
/// during slot `slot`. A single slot may carry any number of arrivals
/// (including several at the same site), matching Chapter 4's model.
struct Arrival {
  Slot slot = 0;
  NodeId site = 0;
  std::uint64_t element = 0;
};

/// Lazily produced arrival sequence (non-decreasing in slot). Sources are
/// single-pass; experiments construct a fresh source per run.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;
  /// Next arrival, or nullopt at end of stream.
  virtual std::optional<Arrival> next() = 0;
};

/// Progress snapshot handed to the observer callback.
struct Progress {
  std::uint64_t elements_processed = 0;
  Slot slot = 0;
  bool final_snapshot = false;
};

class Runner {
 public:
  /// `sites[i]` handles arrivals for site id i. If `invoke_slot_begin` is
  /// set, every site receives on_slot_begin for every slot in order (the
  /// sliding-window protocols need this for expiry processing); leave it
  /// off for infinite-window runs where slots carry no semantics.
  Runner(net::Transport& net, std::vector<StreamNode*> sites,
         bool invoke_slot_begin);

  /// Observer invoked every `observe_every` arrivals and once at the end
  /// (with final_snapshot=true). observe_every == 0 disables periodic
  /// observation.
  void set_observer(std::uint64_t observe_every,
                    std::function<void(const Progress&)> observer);

  /// Runs the whole source, then lets the transport finish in-flight
  /// deliveries. Returns the number of arrivals processed.
  std::uint64_t run(ArrivalSource& source);

  /// Advances slot processing through `slot` without arrivals (used to
  /// let sliding windows expire after the stream ends).
  void advance_to_slot(Slot slot);

  Slot current_slot() const noexcept { return current_slot_; }

 private:
  void begin_slots_through(Slot slot);

  net::Transport& net_;
  std::vector<StreamNode*> sites_;
  bool invoke_slot_begin_;
  Slot current_slot_ = -1;
  std::uint64_t processed_ = 0;
  std::uint64_t observe_every_ = 0;
  std::function<void(const Progress&)> observer_;
};

}  // namespace dds::sim
