#include "sim/node.h"

#include "net/transport.h"

namespace dds::sim {

void StreamNode::on_element_batch(std::span<const std::uint64_t> elements,
                                  Slot t, net::Transport& net) {
  // Reference semantics: deliver + drain per element, exactly what the
  // serial engine does element-at-a-time. Sites without a batch
  // override are bit-identical by construction.
  for (const std::uint64_t element : elements) {
    on_element(element, t, net);
    net.drain();
  }
}

}  // namespace dds::sim
