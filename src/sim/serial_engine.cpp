#include "sim/serial_engine.h"

namespace dds::sim {

std::uint64_t SerialEngine::run(ArrivalSource& source) {
  while (auto arrival = source.next()) {
    validate(*arrival);
    begin_slots_through(arrival->slot);
    sites_[arrival->site]->on_element(arrival->element, arrival->slot, net_);
    net_.drain();
    ++processed_;
    if (observe_every_ != 0 && processed_ % observe_every_ == 0) {
      observe(/*final_snapshot=*/false);
    }
  }
  // Let delayed / batched traffic land before the final snapshot (a
  // plain drain on the zero-delay Bus).
  net_.finish();
  observe(/*final_snapshot=*/true);
  return processed_;
}

std::uint64_t SerialEngine::run_batched(ArrivalSource& source,
                                        std::size_t max_batch) {
  if (max_batch <= 1) return run(source);
  batch_.reserve(max_batch);
  std::optional<Arrival> pending = source.next();
  while (pending) {
    validate(*pending);
    begin_slots_through(pending->slot);
    const Slot slot = pending->slot;
    const NodeId site = pending->site;
    batch_.clear();
    batch_.push_back(pending->element);
    pending = source.next();
    while (pending && batch_.size() < max_batch && pending->slot == slot &&
           pending->site == site) {
      validate(*pending);
      batch_.push_back(pending->element);
      pending = source.next();
    }
    sites_[site]->on_element_batch(
        std::span<const std::uint64_t>(batch_.data(), batch_.size()), slot,
        net_);
    const std::uint64_t before = processed_;
    processed_ += batch_.size();
    // The batch hook drains after every element, so the transport is
    // already quiescent. Observe at most once per batch, when a multiple
    // of observe_every was crossed inside it.
    if (observe_every_ != 0 &&
        processed_ / observe_every_ != before / observe_every_) {
      observe(/*final_snapshot=*/false);
    }
  }
  net_.finish();
  observe(/*final_snapshot=*/true);
  return processed_;
}

}  // namespace dds::sim
