#include "sim/serial_engine.h"

namespace dds::sim {

std::uint64_t SerialEngine::run(ArrivalSource& source) {
  while (auto arrival = source.next()) {
    validate(*arrival);
    begin_slots_through(arrival->slot);
    sites_[arrival->site]->on_element(arrival->element, arrival->slot, net_);
    net_.drain();
    ++processed_;
    if (observe_every_ != 0 && processed_ % observe_every_ == 0) {
      observe(/*final_snapshot=*/false);
    }
  }
  // Let delayed / batched traffic land before the final snapshot (a
  // plain drain on the zero-delay Bus).
  net_.finish();
  observe(/*final_snapshot=*/true);
  return processed_;
}

}  // namespace dds::sim
