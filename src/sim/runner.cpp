#include "sim/runner.h"

#include <stdexcept>

namespace dds::sim {

Runner::Runner(net::Transport& net, std::vector<StreamNode*> sites,
               bool invoke_slot_begin)
    : net_(net), sites_(std::move(sites)),
      invoke_slot_begin_(invoke_slot_begin) {
  if (sites_.size() != net_.num_sites()) {
    throw std::invalid_argument("Runner: site count mismatch with transport");
  }
}

void Runner::set_observer(std::uint64_t observe_every,
                          std::function<void(const Progress&)> observer) {
  observe_every_ = observe_every;
  observer_ = std::move(observer);
}

void Runner::begin_slots_through(Slot slot) {
  if (!invoke_slot_begin_) {
    current_slot_ = slot;
    net_.set_now(current_slot_);
    // In-flight traffic due by this slot lands before the next arrival.
    net_.drain();
    return;
  }
  while (current_slot_ < slot) {
    ++current_slot_;
    net_.set_now(current_slot_);
    // Traffic due at the slot boundary is delivered before any site runs
    // its expiry logic for the slot (a no-op on the zero-delay Bus,
    // whose queue is always empty here).
    net_.drain();
    for (auto* site : sites_) {
      site->on_slot_begin(current_slot_, net_);
      net_.drain();
    }
  }
}

std::uint64_t Runner::run(ArrivalSource& source) {
  while (auto arrival = source.next()) {
    if (arrival->slot < current_slot_) {
      throw std::invalid_argument("Runner: arrivals must be slot-ordered");
    }
    if (arrival->site >= sites_.size()) {
      throw std::out_of_range("Runner: arrival for unknown site");
    }
    begin_slots_through(arrival->slot);
    sites_[arrival->site]->on_element(arrival->element, arrival->slot, net_);
    net_.drain();
    ++processed_;
    if (observe_every_ != 0 && observer_ && processed_ % observe_every_ == 0) {
      observer_(Progress{processed_, current_slot_, false});
    }
  }
  // Let delayed / batched traffic land before the final snapshot (a
  // plain drain on the zero-delay Bus).
  net_.finish();
  if (observer_) {
    observer_(Progress{processed_, current_slot_, true});
  }
  return processed_;
}

void Runner::advance_to_slot(Slot slot) { begin_slots_through(slot); }

}  // namespace dds::sim
