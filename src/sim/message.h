// Message model for the continuous distributed monitoring simulation.
//
// The paper's model (Chapter 2): k sites and one coordinator, synchronous
// time slots, zero message delay, and every protocol message fits in a
// constant number of bytes. We mirror that with a fixed-size POD message:
// routing header + three 64-bit payload words, which is enough for every
// protocol in this library (element key, hash value, expiry timestamp).
// The cost metric of the paper — number of messages — is counted by the
// Bus, one per Message, so a broadcast to k sites costs k messages.
#pragma once

#include <cstdint>

namespace dds::sim {

/// Node identifier. Sites are 0..k-1; the coordinator gets its own id.
using NodeId = std::uint32_t;

/// Slot timestamps. Signed so "expiry - w" style arithmetic is safe.
using Slot = std::int64_t;

inline constexpr NodeId kNoNode = ~0U;

/// Protocol-level message tags. One flat enum across protocols keeps the
/// Bus counters simple; each protocol uses its own subset.
enum class MsgType : std::uint8_t {
  // Infinite-window protocol (Algorithms 1 & 2).
  kReportElement,   // site -> coord: candidate element (a=element, b=hash)
  kThresholdReply,  // coord -> site: current u (b=u)
  // Broadcast baseline (Section 5.2).
  kThresholdBroadcast,  // coord -> every site: new u (b=u)
  // Sliding-window protocol (Algorithms 3 & 4).
  kSlidingReport,  // site -> coord: (a=element, b=hash, c=expiry slot)
  kSlidingReply,   // coord -> site: global sample (a=element, b=hash, c=expiry)
  // Distributed random (frequency-weighted) sampling baseline.
  kDrsReport,  // site -> coord: (a=element, b=random tag)
  kDrsReply,   // coord -> site: current threshold (b=tag threshold)
};

inline constexpr std::uint8_t kNumMsgTypes = 7;

/// Stable lowercase name per message type — the observability layer
/// keys its per-protocol message-class metrics on these
/// ("proto.msgs.sliding_report", ...).
constexpr const char* msg_type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::kReportElement:
      return "report_element";
    case MsgType::kThresholdReply:
      return "threshold_reply";
    case MsgType::kThresholdBroadcast:
      return "threshold_broadcast";
    case MsgType::kSlidingReport:
      return "sliding_report";
    case MsgType::kSlidingReply:
      return "sliding_reply";
    case MsgType::kDrsReport:
      return "drs_report";
    case MsgType::kDrsReply:
      return "drs_reply";
  }
  return "unknown";
}

/// A constant-size protocol message.
struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  MsgType type = MsgType::kReportElement;
  /// Sub-sampler index for multi-instance protocols (with-replacement
  /// sampling and s>1 sliding windows run s independent instances).
  std::uint32_t instance = 0;
  std::uint64_t a = 0;  ///< element key (when applicable)
  std::uint64_t b = 0;  ///< hash value / threshold
  std::uint64_t c = 0;  ///< expiry slot (sliding-window protocols)

  /// Wire size in bytes under the paper's constant-size-message
  /// assumption: header (from,to,type,instance) + three payload words.
  static constexpr std::size_t wire_bytes() noexcept {
    return 4 + 4 + 1 + 4 + 3 * 8;
  }
};

}  // namespace dds::sim
