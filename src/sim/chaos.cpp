#include "sim/chaos.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dds::sim {

const char* chaos_action_name(ChaosAction action) noexcept {
  switch (action) {
    case ChaosAction::kKill: return "kill";
    case ChaosAction::kRespawn: return "respawn";
    case ChaosAction::kPartition: return "partition";
    case ChaosAction::kHeal: return "heal";
    case ChaosAction::kCorruptImage: return "corrupt_image";
    case ChaosAction::kTruncateImage: return "truncate_image";
  }
  return "unknown";
}

ChaosPlan& ChaosPlan::add(const ChaosEvent& event) {
  events_.push_back(event);
  return *this;
}

ChaosPlan& ChaosPlan::kill_at(Slot slot, std::uint32_t shard) {
  return add(ChaosEvent{slot, ChaosAction::kKill, shard, 0.0});
}
ChaosPlan& ChaosPlan::respawn_at(Slot slot, std::uint32_t shard) {
  return add(ChaosEvent{slot, ChaosAction::kRespawn, shard, 0.0});
}
ChaosPlan& ChaosPlan::partition_at(Slot slot, std::uint32_t shard,
                                   double drop_rate) {
  return add(ChaosEvent{slot, ChaosAction::kPartition, shard, drop_rate});
}
ChaosPlan& ChaosPlan::heal_at(Slot slot, std::uint32_t shard) {
  return add(ChaosEvent{slot, ChaosAction::kHeal, shard, 0.0});
}
ChaosPlan& ChaosPlan::corrupt_image_at(Slot slot, std::uint32_t shard) {
  return add(ChaosEvent{slot, ChaosAction::kCorruptImage, shard, 0.0});
}
ChaosPlan& ChaosPlan::truncate_image_at(Slot slot, std::uint32_t shard) {
  return add(ChaosEvent{slot, ChaosAction::kTruncateImage, shard, 0.0});
}

ChaosPlan ChaosPlan::randomized(std::uint64_t seed, Slot horizon,
                                std::uint32_t num_shards,
                                const ChaosProfile& profile) {
  ChaosPlan plan;
  const auto unit = [](std::uint64_t raw) {
    return static_cast<double>(raw >> 11) * 0x1.0p-53;
  };
  for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
    util::SplitMix64 gen(util::derive_seed(seed, 0xC0A05000ULL + shard));
    // Outages: scan the horizon; while down, no new faults for this
    // shard (outages never overlap themselves).
    Slot t = 1;
    while (t < horizon) {
      if (unit(gen.next()) < profile.kill_rate) {
        const Slot span =
            std::max<Slot>(1, profile.max_outage - profile.min_outage + 1);
        const Slot outage =
            profile.min_outage + static_cast<Slot>(gen.next() % span);
        const Slot back = std::min<Slot>(t + outage, horizon);
        plan.kill_at(t, shard);
        // Image sabotage rides the respawn: armed one slot before, so
        // the recovery's first transferred image is the damaged one.
        const double roll = unit(gen.next());
        if (roll < profile.truncate_rate) {
          plan.truncate_image_at(back, shard);
        } else if (roll < profile.truncate_rate + profile.corrupt_rate) {
          plan.corrupt_image_at(back, shard);
        }
        plan.respawn_at(back, shard);
        t = back + 1;
        continue;
      }
      if (unit(gen.next()) < profile.partition_rate) {
        const Slot heal = std::min<Slot>(t + profile.partition_len, horizon);
        plan.partition_at(t, shard, profile.partition_drop);
        plan.heal_at(heal, shard);
        t = heal + 1;
        continue;
      }
      ++t;
    }
  }
  return plan;
}

ChaosController::ChaosController(ChaosPlan plan, ChaosHooks hooks,
                                 std::uint64_t seed)
    : events_(plan.events()),
      hooks_(std::move(hooks)),
      sabotage_rng_(util::derive_seed(seed, 0x5AB07A6EULL)) {  // "sabotage"
  // Stable sort: same-slot events fire in scripting order.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.slot < b.slot;
                   });
  std::uint32_t max_shard = 0;
  for (const ChaosEvent& e : events_) max_shard = std::max(max_shard, e.shard);
  corrupt_armed_.assign(max_shard + 1, 0);
  truncate_armed_.assign(max_shard + 1, 0);
}

void ChaosController::step(Slot t) {
  now_ = t;
  while (next_ < events_.size() && events_[next_].slot <= t) {
    fire(events_[next_]);
    ++next_;
  }
}

void ChaosController::fire(const ChaosEvent& event) {
  ++stats_.events_fired;
  switch (event.action) {
    case ChaosAction::kKill:
      ++stats_.kills;
      if (hooks_.kill) hooks_.kill(event.shard);
      trace("kill", event.shard, 0.0);
      break;
    case ChaosAction::kRespawn:
      ++stats_.respawns;
      if (hooks_.respawn) hooks_.respawn(event.shard);
      trace("respawn", event.shard, 0.0);
      break;
    case ChaosAction::kPartition:
      ++stats_.partitions;
      if (hooks_.partition) hooks_.partition(event.shard, event.param);
      trace("partition", event.shard, event.param);
      break;
    case ChaosAction::kHeal:
      ++stats_.heals;
      if (hooks_.heal) hooks_.heal(event.shard);
      trace("heal", event.shard, 0.0);
      break;
    case ChaosAction::kCorruptImage:
      if (event.shard < corrupt_armed_.size()) corrupt_armed_[event.shard] = 1;
      trace("arm_corrupt", event.shard, 0.0);
      break;
    case ChaosAction::kTruncateImage:
      if (event.shard < truncate_armed_.size()) {
        truncate_armed_[event.shard] = 1;
      }
      trace("arm_truncate", event.shard, 0.0);
      break;
  }
}

bool ChaosController::mangle(std::uint32_t shard,
                             std::vector<std::uint8_t>& image) {
  bool touched = false;
  if (shard < truncate_armed_.size() && truncate_armed_[shard] != 0 &&
      !image.empty()) {
    truncate_armed_[shard] = 0;
    image.resize(image.size() / 2);
    ++stats_.images_truncated;
    trace("truncate_image", shard, static_cast<double>(image.size()));
    touched = true;
  }
  if (shard < corrupt_armed_.size() && corrupt_armed_[shard] != 0 &&
      !image.empty()) {
    corrupt_armed_[shard] = 0;
    const std::size_t at = sabotage_rng_.next() % image.size();
    image[at] ^= static_cast<std::uint8_t>(
        0x01u << (sabotage_rng_.next() % 8));
    ++stats_.images_corrupted;
    trace("corrupt_image", shard, static_cast<double>(at));
    touched = true;
  }
  return touched;
}

Slot ChaosController::next_event_slot() const noexcept {
  return next_ < events_.size() ? events_[next_].slot
                                : std::numeric_limits<Slot>::max();
}

void ChaosController::trace(const char* what, std::uint32_t shard,
                            double detail) {
  if (tracer_ == nullptr) return;
  tracer_->instant("chaos", what, static_cast<double>(now_), shard,
                   {{"shard", static_cast<double>(shard)},
                    {"detail", detail}});
}

void ChaosController::bind_observability(obs::MetricsRegistry* registry,
                                         obs::Tracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) return;
  registry->counter("chaos.events_fired", &stats_.events_fired);
  registry->counter("chaos.kills", &stats_.kills);
  registry->counter("chaos.respawns", &stats_.respawns);
  registry->counter("chaos.partitions", &stats_.partitions);
  registry->counter("chaos.heals", &stats_.heals);
  registry->counter("chaos.images_corrupted", &stats_.images_corrupted);
  registry->counter("chaos.images_truncated", &stats_.images_truncated);
}

}  // namespace dds::sim
