#include "sim/metrics.h"

#include <set>
#include <stdexcept>

namespace dds::sim {

std::vector<double> Series::xs() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const auto& [x, _] : points_) out.push_back(x);
  return out;
}

double Series::mean_at(double x) const {
  auto it = points_.find(x);
  return it == points_.end() ? 0.0 : it->second.mean();
}

const util::RunningStat& Series::stat_at(double x) const {
  const util::RunningStat* stat = find_stat(x);
  if (stat == nullptr) {
    throw std::out_of_range("Series: no samples at requested x");
  }
  return *stat;
}

const util::RunningStat* Series::find_stat(double x) const noexcept {
  auto it = points_.find(x);
  return it == points_.end() ? nullptr : &it->second;
}

Series& SeriesBundle::series(std::string_view name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    order_.emplace_back(name);
    it = series_.emplace(std::string(name), Series{}).first;
  }
  return it->second;
}

const Series* SeriesBundle::find(std::string_view name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

util::Table SeriesBundle::to_table(bool with_ci) const {
  std::vector<std::string> header{x_label_};
  for (const auto& name : order_) {
    header.push_back(name);
    if (with_ci) header.push_back(name + " ci95");
  }
  util::Table table(std::move(header));

  std::set<double> all_x;
  for (const auto& [_, s] : series_) {
    for (double x : s.xs()) all_x.insert(x);
  }
  for (double x : all_x) {
    std::vector<std::string> row{util::fmt(x)};
    for (const auto& name : order_) {
      const Series& s = series_.at(name);
      if (const util::RunningStat* stat = s.find_stat(x)) {
        row.push_back(util::fmt(stat->mean()));
        if (with_ci) row.push_back(util::fmt(stat->ci95_halfwidth(), 3));
      } else {
        row.push_back("-");
        if (with_ci) row.push_back("-");
      }
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace dds::sim
