// The audited message bus.
//
// All site<->coordinator communication flows through Bus::send, which
// counts every message (total, per type, per direction, per node) and
// then delivers it. Experiments read the paper's cost metric — message
// count — from these counters, so the reported numbers are measured at
// the transport layer rather than tallied inside the algorithms.
//
// Delivery is queued FIFO and drained to quiescence after every external
// event, which models the paper's zero-delay synchronous network while
// keeping ordering deterministic and call stacks shallow.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/message.h"
#include "sim/node.h"

namespace dds::sim {

/// Counter snapshot; subtraction gives per-interval deltas.
struct BusCounters {
  std::uint64_t total = 0;
  std::uint64_t site_to_coordinator = 0;
  std::uint64_t coordinator_to_site = 0;
  std::uint64_t bytes = 0;
  std::array<std::uint64_t, kNumMsgTypes> by_type{};

  BusCounters operator-(const BusCounters& rhs) const noexcept;
};

class Bus {
 public:
  /// Creates a bus for `num_sites` sites (ids 0..num_sites-1) plus a
  /// coordinator (id = num_sites). Nodes are attached afterwards.
  explicit Bus(std::uint32_t num_sites);

  NodeId coordinator_id() const noexcept { return num_sites_; }
  std::uint32_t num_sites() const noexcept { return num_sites_; }

  /// Current slot, maintained by the Runner. The paper's model has all
  /// nodes time-synchronized (Chapter 2), so the coordinator may read
  /// the clock directly (Algorithm 4 tests "t* < t").
  void set_now(Slot now) noexcept { now_ = now; }
  Slot now() const noexcept { return now_; }

  /// Attaches the handler for node `id`. The bus does not own nodes.
  void attach(NodeId id, Node* node);

  /// Queues a message for delivery and counts it.
  void send(const Message& msg);

  /// Delivers queued messages (FIFO) until the queue is empty. Messages
  /// sent during delivery are processed in the same drain.
  void drain();

  const BusCounters& counters() const noexcept { return counters_; }

  /// Messages sent by node `id` (either direction counts at the sender).
  std::uint64_t sent_by(NodeId id) const;
  /// Messages delivered to node `id`.
  std::uint64_t received_by(NodeId id) const;

  /// Optional tap invoked for every sent message (determinism tests
  /// record traces through this).
  void set_tap(std::function<void(const Message&)> tap) {
    tap_ = std::move(tap);
  }

 private:
  std::uint32_t num_sites_;
  std::vector<Node*> nodes_;
  std::deque<Message> queue_;
  BusCounters counters_;
  std::vector<std::uint64_t> sent_by_;
  std::vector<std::uint64_t> received_by_;
  std::function<void(const Message&)> tap_;
  bool draining_ = false;
  Slot now_ = 0;
};

}  // namespace dds::sim
