// The zero-delay synchronous message bus.
//
// The default net::Transport implementation: delivery is queued FIFO and
// drained to quiescence after every external event, which models the
// paper's zero-delay synchronous network while keeping ordering
// deterministic and call stacks shallow. All counting (the paper's cost
// metric is message count) lives in the Transport base, measured at the
// transport layer rather than tallied inside the algorithms. For
// realistic wires (latency, jitter, loss, batching) see
// net::SimNetwork.
#pragma once

#include <deque>

#include "net/transport.h"
#include "sim/message.h"
#include "sim/node.h"

namespace dds::sim {

/// The counters kept their historical home in this namespace; the struct
/// itself moved to the transport layer.
using BusCounters = net::BusCounters;

class Bus final : public net::Transport {
 public:
  /// Creates a bus for `num_sites` sites (ids 0..num_sites-1) plus
  /// `num_coordinators` coordinator shards (ids from num_sites up).
  /// Nodes are attached afterwards.
  explicit Bus(std::uint32_t num_sites, std::uint32_t num_coordinators = 1)
      : Transport(num_sites, num_coordinators) {}

  bool synchronous() const noexcept override { return true; }

  /// Queues a message for immediate delivery and counts it.
  void send(const Message& msg) override;

  /// Delivers queued messages (FIFO) until the queue is empty. Messages
  /// sent during delivery are processed in the same drain.
  void drain() override;

 private:
  std::deque<Message> queue_;
  bool draining_ = false;
};

}  // namespace dds::sim
