// The serial execution engine — the paper's synchronous model, verbatim:
// one arrival at a time on the calling thread, the transport drained to
// quiescence after every event. This is the reference implementation
// every other engine must match bit-for-bit (see sharded_engine.h).
#pragma once

#include "sim/engine.h"

namespace dds::sim {

class SerialEngine final : public Engine {
 public:
  using Engine::Engine;

  std::uint64_t run(ArrivalSource& source) override;

  std::uint64_t run_batched(ArrivalSource& source,
                            std::size_t max_batch) override;

  const char* name() const noexcept override { return "serial"; }

 private:
  std::vector<std::uint64_t> batch_;  ///< gather buffer, reused across runs
};

}  // namespace dds::sim
