// Time-series capture for experiments: (x, y...) samples accumulated
// across repeated runs and reduced to mean / CI per x — the paper
// averages every data point over 50 independent runs (Chapter 5).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.h"
#include "util/table.h"

namespace dds::sim {

/// Accumulates y-samples keyed by an x coordinate (stream position,
/// sample size, #sites, window size, ...) over multiple runs.
class Series {
 public:
  void add(double x, double y) { points_[x].add(y); }

  /// Sorted x coordinates.
  std::vector<double> xs() const;
  /// Mean y at x (0 if absent).
  double mean_at(double x) const;
  /// Stats at x; throws std::out_of_range when no sample exists there.
  /// Prefer find_stat() when absence is an expected case.
  const util::RunningStat& stat_at(double x) const;
  /// Stats at x, or nullptr when no sample exists there — the safe miss
  /// path for ragged bundles (series sampled at different x sets).
  const util::RunningStat* find_stat(double x) const noexcept;
  bool empty() const noexcept { return points_.empty(); }

 private:
  std::map<double, util::RunningStat> points_;
};

/// A named bundle of series sharing an x axis; renders the paper-style
/// table with one row per x and one (mean, ci95) column pair per series.
class SeriesBundle {
 public:
  explicit SeriesBundle(std::string x_label) : x_label_(std::move(x_label)) {}

  /// Heterogeneous lookup: recording into an existing series from a
  /// string literal / string_view allocates nothing.
  Series& series(std::string_view name);
  const Series* find(std::string_view name) const;

  /// Builds a table: x | <name> mean | <name> ci95 | ...
  /// Series order follows first insertion.
  util::Table to_table(bool with_ci = true) const;

 private:
  std::string x_label_;
  std::vector<std::string> order_;
  std::map<std::string, Series, std::less<>> series_;
};

}  // namespace dds::sim
