// Walkthrough: surviving a coordinator crash without losing the answer.
//
//   $ ./chaos_failover
//
// Four coordinator shards run the exact bottom-s sliding protocol over
// a lossy wire (latency + jitter + loss with retransmission). A
// Supervisor checkpoints the coordinator ensemble every w/2 slots. Mid
// stream a scripted chaos plan kills shard 2 — and, for good measure,
// corrupts the checkpoint image in flight when the shard respawns, so
// the restore path has to catch the damage (integrity gate), back off,
// and retry from a clean transfer. Queries keep running throughout:
//
//   * before the kill, the merged 4-shard answer is bit-identical to an
//     unsharded fault-free twin fed the same stream;
//   * during the outage, queries degrade gracefully — the merge layer
//     answers from the live shards and annotates the sample incomplete
//     (never a crash; in-flight traffic to the dead coordinator lands
//     in the dead-letter count);
//   * after respawn + verified restore + resync, the answer is exact
//     again — bit-identical from the recovery slot onward.
//
// Observability (the CI chaos smoke runs this twice with the same seed
// and asserts the artifacts are bit-identical — the chaos layer is
// replayable):
//   --metrics PATH   write the final Prometheus snapshot (includes the
//                    chaos.* and supervisor.* counter families)
//   --json PATH      write the structured-JSON snapshot
//   --trace PATH     write the Chrome trace (chaos events appear as
//                    instants in the "chaos" category)
//   --seed N         master seed (stream + wire), default 7
#include <fstream>
#include <iostream>

#include "baseline/baseline_checkpoint.h"
#include "baseline/baseline_system.h"
#include "core/supervisor.h"
#include "net/sim_network.h"
#include "obs/observability.h"
#include "sim/chaos.h"
#include "sim/sources.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace dds;

  util::Cli cli;
  cli.flag("metrics", "write the final Prometheus snapshot here", "");
  cli.flag("json", "write the final JSON snapshot here", "");
  cli.flag("trace", "write the Chrome trace here", "");
  cli.flag("seed", "master seed", "7");
  if (!cli.parse(argc, argv)) return 1;
  const std::string metrics_path = cli.get("metrics");
  const std::string json_path = cli.get("json");
  const std::string trace_path = cli.get("trace");
  const std::uint64_t seed = cli.get_uint("seed");

  core::SlidingSystemConfig config;
  config.num_sites = 8;
  config.window = 50;       // "the last 50 slots"
  config.sample_size = 3;   // exact bottom-3 of the window
  config.seed = seed;
  baseline::BottomSSlidingSystem reference(config);  // fault-free twin

  auto chaotic_config = config;
  chaotic_config.num_shards = 4;
  chaotic_config.num_threads = 4;  // lockstep waves on the realistic wire
  chaotic_config.network.link.latency = 1.5;
  chaotic_config.network.link.jitter = 0.5;
  chaotic_config.network.link.drop_rate = 0.05;
  chaotic_config.network.link.retransmit = true;
  chaotic_config.network.seed = util::derive_seed(seed, 0xFA11);
  chaotic_config.observability.metrics =
      !metrics_path.empty() || !json_path.empty();
  chaotic_config.observability.tracing = !trace_path.empty();
  baseline::BottomSSlidingSystem system(chaotic_config);

  std::cout << "engine: " << system.runner().name() << " ("
            << system.runner().num_threads() << " threads), shards: "
            << system.num_shards() << ", wire horizon: "
            << system.bus().delivery_horizon() << " slots\n";

  // The control plane: checkpoint the ensemble every w/2 slots; the
  // scripted respawn below calls recover() explicitly, so the timeout
  // detector stays out of the way.
  core::SupervisorConfig sup_config;
  sup_config.checkpoint_cadence = config.window / 2;
  sup_config.auto_recover = false;
  core::Supervisor<baseline::BottomSSlidingSystem> supervisor(system,
                                                              sup_config);

  // The scripted fault: kill shard 2 at slot 250; at the slot-270
  // respawn the restore's first image transfer arrives corrupted.
  const sim::Slot kKill = 250;
  const sim::Slot kRespawn = 270;
  sim::ChaosPlan plan;
  plan.kill_at(kKill, 2).corrupt_image_at(kKill, 2).respawn_at(kRespawn, 2);
  sim::Slot now = 0;
  sim::ChaosHooks hooks;
  hooks.kill = [&](std::uint32_t shard) {
    system.kill_shard(shard);
    supervisor.notify_killed(shard, now);
    std::cout << "slot " << now << ": CHAOS kill shard " << shard << "\n";
  };
  hooks.respawn = [&](std::uint32_t shard) {
    const bool restored = supervisor.recover(shard, now);
    std::cout << "slot " << now << ": respawn shard " << shard
              << (restored ? " (restored from checkpoint image)"
                           : " (degraded: resync only)")
              << ", retries=" << supervisor.stats().restore_failures
              << ", latency=" << supervisor.stats().last_recovery_latency
              << " slots\n";
  };
  sim::ChaosController controller(plan, std::move(hooks));
  supervisor.set_image_filter(
      [&](std::uint32_t shard, core::CheckpointImage& image) {
        controller.mangle(shard, image);
      });
  supervisor.bind_observability(system.observability().registry());
  controller.bind_observability(system.observability().registry(),
                                system.observability().tracer());

  // 600 slots of traffic; the merged window sample is queried every 60
  // slots — before, during, and after the outage.
  util::SplitMix64 gen(util::derive_seed(seed, 0x57AE));
  for (sim::Slot t = 0; t < 600; ++t) {
    now = t;
    std::vector<std::pair<sim::NodeId, std::uint64_t>> xs;
    for (int i = 0; i < 6; ++i) {
      xs.emplace_back(static_cast<sim::NodeId>(gen.next() % config.num_sites),
                      1 + gen.next() % 3000);
    }
    {
      sim::SlotSource source(t, xs);
      reference.run(source);
    }
    {
      sim::SlotSource source(t, std::move(xs));
      system.run(source);
    }
    supervisor.on_slot(t);
    controller.step(t);
    if ((t + 1) % 60 == 0 || t == kKill + 5) {
      system.observability().sample_counters(static_cast<double>(t));
      const auto annotated = system.sample_annotated(t);
      std::cout << "slot " << t << ": merged sample {";
      for (std::size_t i = 0; i < annotated.sample.size(); ++i) {
        std::cout << (i == 0 ? "" : ", ") << annotated.sample[i].element;
      }
      std::cout << "}";
      if (annotated.complete) {
        const bool exact =
            reference.coordinator().sample(t) == system.sample(t);
        std::cout << (exact ? " == unsharded fault-free answer"
                            : " DIVERGED from the unsharded answer?!");
      } else {
        std::cout << " [degraded: " << system.dead_shards()
                  << " shard down, live shards only]";
      }
      std::cout << "\n";
    }
  }

  const auto& stats = supervisor.stats();
  std::cout << "\nsupervisor: " << stats.checkpoints << " checkpoints ("
            << stats.checkpoint_bytes << " bytes), " << stats.recoveries
            << " recovery (restored), " << stats.restore_failures
            << " transfer rejected by the integrity gate, "
            << stats.backoff_slots << " backoff slot(s)\n";
  std::cout << "chaos: " << controller.stats().kills << " kill, "
            << controller.stats().respawns << " respawn, "
            << controller.stats().images_corrupted
            << " image corrupted in flight\n";
  std::cout << "dead-letter messages absorbed during the outage: "
            << system.dead_letters() << "\n";

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    out << system.observability().prometheus();
    std::cout << "metrics snapshot written to " << metrics_path << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << system.observability().json();
    std::cout << "JSON snapshot written to " << json_path << "\n";
  }
  if (!trace_path.empty()) {
    system.observability().write_trace(trace_path);
    std::cout << "trace written to " << trace_path << " ("
              << system.observability().tracer()->size() << " events)\n";
  }
  return 0;
}
