// Cross-stream similarity — composing two coordinators' samples.
//
// Two independent monitoring deployments (say, two data centers, each
// with its own sites and coordinator) maintain distinct samples of the
// user populations they serve. Because both use the same hash function,
// their bottom-s samples are KMV sketches that COMPOSE: union size,
// overlap, and Jaccard similarity of the two populations fall out of
// the coordinator state with zero extra communication.
//
//   ./build/examples/cross_stream_similarity [--overlap-pct 30]
#include <cstdio>

#include "core/system.h"
#include "query/estimators.h"
#include "query/set_operations.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  cli.flag("sites", "sites per deployment", "4");
  cli.flag("users", "distinct users per deployment", "50000");
  cli.flag("overlap-pct", "percentage of users shared by both", "30");
  cli.flag("sample-size", "sample size per coordinator", "512");
  cli.flag("seed", "seed", "9");
  if (!cli.parse(argc, argv)) return 1;

  const auto sites = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto users = cli.get_uint("users");
  const auto overlap_pct = cli.get_uint("overlap-pct");
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const auto seed = cli.get_uint("seed");
  const std::uint64_t shared = users * overlap_pct / 100;

  // Same config (and hence the same hash seed) for both deployments —
  // the precondition for sketch composition.
  core::SystemConfig config{sites, s, hash::HashKind::kMurmur2, seed};
  core::InfiniteSystem east(config), west(config);

  auto feed = [&](core::InfiniteSystem& sys, std::uint64_t lo,
                  std::uint64_t hi, std::uint64_t salt) {
    std::vector<stream::Element> population;
    population.reserve(hi - lo);
    for (std::uint64_t u = lo; u < hi; ++u) {
      population.push_back(util::mix64(u));
    }
    stream::VectorStream replay(std::move(population));
    stream::RandomPartitioner src(replay, sites, salt);
    sys.run(src);
  };
  // East serves users [0, users); West serves
  // [users - shared, 2*users - shared): `shared` users in common.
  feed(east, 0, users, seed + 1);
  feed(west, users - shared, 2 * users - shared, seed + 2);

  const auto est = query::estimate_set_operations(
      east.coordinator().sample(), west.coordinator().sample());
  const double true_union = static_cast<double>(2 * users - shared);
  const double true_jaccard =
      static_cast<double>(shared) / true_union;

  std::printf("deployments: %u sites each, %llu users each, %llu shared\n",
              sites, static_cast<unsigned long long>(users),
              static_cast<unsigned long long>(shared));
  std::printf("union:        estimated %.0f   (true %.0f, error %+.1f%%)\n",
              est.union_size, true_union,
              100.0 * (est.union_size - true_union) / true_union);
  std::printf("intersection: estimated %.0f   (true %llu)\n",
              est.intersection_size,
              static_cast<unsigned long long>(shared));
  std::printf("jaccard:      estimated %.3f (true %.3f)\n", est.jaccard,
              true_jaccard);
  std::printf("\nno messages were exchanged between the two deployments — "
              "the estimates come from the coordinators' existing samples\n");
  return 0;
}
