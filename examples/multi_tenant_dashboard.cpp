// Multi-tenant dashboard — many standing window queries, one structure.
//
// An analytics service hosts several tenants, each holding a standing
// "distinct sample of the last w_i slots" query over the same event
// stream — a 1-minute dashboard, a 5-minute alerting rule, an hourly
// report, and so on. Instead of running one sampler per tenant, the
// query::TenantRegistry ingests the stream ONCE (batched: one hash
// pass per batch) into a single candidate structure keyed at the widest
// width, and answers every narrower width with an expiry-threshold walk
// (docs/ingest.md explains the math). This example drives it through
// bursty traffic next to the naive one-sampler-per-tenant deployment
// and prints, per reporting interval:
//
//   * each tenant's current distinct-count estimate at its own width,
//   * proof-of-exactness ticks (shared answers == per-tenant samplers),
//   * the memory ratio: shared tuples vs the naive deployment's sum.
//
//   ./build/examples/multi_tenant_dashboard [--tenants 8] [--slots 4000]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/windowed_bottom_s.h"
#include "query/merge.h"
#include "query/service.h"
#include "stream/element.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  cli.flag("tenants", "number of tenants (widths spread up to max)", "8");
  cli.flag("max-width", "widest tenant window in slots", "1024");
  cli.flag("slots", "number of slots to simulate", "4000");
  cli.flag("sample-size", "per-tenant bottom-s sample size", "16");
  cli.flag("batch", "ingest batch width", "8");
  cli.flag("seed", "seed", "11");
  if (!cli.parse(argc, argv)) return 1;

  const auto tenants = static_cast<std::size_t>(cli.get_uint("tenants"));
  const auto max_width = static_cast<sim::Slot>(cli.get_uint("max-width"));
  const auto slots = static_cast<sim::Slot>(cli.get_uint("slots"));
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const auto batch = static_cast<std::size_t>(cli.get_uint("batch"));
  const std::uint64_t seed = cli.get_uint("seed");

  query::TenantRegistry registry(s, max_width, /*num_streams=*/1,
                                 hash::HashKind::kMurmur2, seed);
  // Widths spread geometrically up to the maximum; tenant M-1 gets W.
  std::vector<sim::Slot> widths;
  for (std::size_t i = 0; i < tenants; ++i) {
    const auto w = static_cast<sim::Slot>(
        std::max<sim::Slot>(1, (max_width * static_cast<sim::Slot>(i + 1)) /
                                   static_cast<sim::Slot>(tenants)));
    widths.push_back(w);
    registry.register_tenant(w);
  }

  // The naive comparator: one independent sampler per tenant, fed the
  // same stream. Its answers must match the registry's bit for bit.
  std::vector<core::WindowedBottomSSampler> naive;
  naive.reserve(tenants);
  for (std::size_t i = 0; i < tenants; ++i) {
    naive.emplace_back(s, widths[i], hash::HashFunction(hash::HashKind::kMurmur2, seed),
                       util::derive_seed(seed, 0x6E760000ULL + i));
  }

  util::Xoshiro256StarStar rng(seed + 100);
  std::vector<stream::Element> burst;
  std::vector<treap::Candidate> naive_answer;
  std::uint64_t arrivals = 0;
  std::uint64_t agree = 0, checked = 0;

  std::printf("%-8s %-12s %-12s %-12s %-10s %s\n", "slot", "est@w[0]",
              "est@w[mid]", "est@w[max]", "exact?", "shared/naive tuples");
  for (sim::Slot t = 0; t < slots; ++t) {
    const bool surge = rng.next_below(100) < 5;
    const std::uint64_t count = surge ? 24 : 2 + rng.next_below(6);
    burst.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
      const bool fresh = surge || rng.next_below(10) < 4;
      burst.push_back(fresh ? util::mix64(0xF00D ^ ++arrivals)
                            : util::mix64(1 + rng.next_below(400)));
    }
    // Shared structure: batched ingest (size `batch` chunks). The naive
    // deployment pays one hash + insert per tenant per element.
    for (std::size_t off = 0; off < burst.size(); off += batch) {
      const std::size_t n = std::min(batch, burst.size() - off);
      registry.update_batch(0, {burst.data() + off, n}, t);
    }
    for (auto& sampler : naive) {
      for (const stream::Element e : burst) sampler.observe(e, t);
    }

    if ((t + 1) % 500 == 0) {
      const auto& answers = registry.serve_all(t);
      bool all_equal = true;
      for (std::size_t i = 0; i < tenants; ++i) {
        naive[i].sample_into(t, naive_answer);
        ++checked;
        if (answers[i] == naive_answer) {
          ++agree;
        } else {
          all_equal = false;
        }
      }
      std::size_t naive_tuples = 0;
      for (const auto& sampler : naive) naive_tuples += sampler.state_size();
      std::printf("%-8lld %-12.1f %-12.1f %-12.1f %-10s %zu / %zu\n",
                  static_cast<long long>(t), registry.estimate(0, t),
                  registry.estimate(tenants / 2, t),
                  registry.estimate(tenants - 1, t),
                  all_equal ? "yes" : "NO", registry.state_size(),
                  naive_tuples);
    }
  }
  std::printf("agreement: %llu/%llu tenant answers identical to naive\n",
              static_cast<unsigned long long>(agree),
              static_cast<unsigned long long>(checked));
  return agree == checked ? 0 : 1;
}
