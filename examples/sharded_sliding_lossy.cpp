// Walkthrough: sharded sliding-window sampling over a lossy wire — the
// full production-shaped deployment in one program.
//
//   $ ./sharded_sliding_lossy
//
// Four coordinator shards split the element space (core::ShardRouter);
// each site runs one protocol copy per shard, so shard j sees exactly
// its partition's substream. The wire has latency, jitter, and loss
// with retransmission, so the deployment lands on net::SimNetwork and —
// with num_threads > 1 — on the ShardedEngine's lockstep mode, whose
// traces are bit-identical to the serial engine on the same wire.
// Queries go through the validity-window-aware merge layer
// (query::SlidingValidityMerger via Deployment::sample(now)): each
// shard's window sample is merged with per-copy expiry respected.
//
// Observability (the CI smoke drives these):
//   --metrics PATH   enable the metrics registry; write the final
//                    snapshot as Prometheus text to PATH
//   --json PATH      also write the structured-JSON snapshot to PATH
//   --trace PATH     enable tracing; write the Chrome trace to PATH
#include <fstream>
#include <iostream>

#include "core/system.h"
#include "net/sim_network.h"
#include "obs/observability.h"
#include "query/merge.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

/// One slot's worth of arrivals.
class SlotSource final : public dds::sim::ArrivalSource {
 public:
  SlotSource(dds::sim::Slot slot,
             std::vector<std::pair<dds::sim::NodeId, std::uint64_t>> xs)
      : slot_(slot), xs_(std::move(xs)) {}
  std::optional<dds::sim::Arrival> next() override {
    if (pos_ >= xs_.size()) return std::nullopt;
    const auto& [site, e] = xs_[pos_++];
    return dds::sim::Arrival{slot_, site, e};
  }

 private:
  dds::sim::Slot slot_;
  std::vector<std::pair<dds::sim::NodeId, std::uint64_t>> xs_;
  std::size_t pos_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dds;

  util::Cli cli;
  cli.flag("metrics", "write the final Prometheus snapshot here", "");
  cli.flag("json", "write the final JSON snapshot here", "");
  cli.flag("trace", "write the Chrome trace here", "");
  if (!cli.parse(argc, argv)) return 1;
  const std::string metrics_path = cli.get("metrics");
  const std::string json_path = cli.get("json");
  const std::string trace_path = cli.get("trace");

  core::SlidingSystemConfig config;
  config.num_sites = 8;
  config.sample_size = 3;   // three independent copies -> 3-element sample
  config.window = 50;       // "the last 50 slots"
  config.seed = 7;
  config.num_shards = 4;    // consistent-hash the coordinator four ways
  config.num_threads = 4;   // lockstep waves on the realistic wire
  config.network.link.latency = 1.5;
  config.network.link.jitter = 0.5;
  config.network.link.drop_rate = 0.05;
  config.network.link.retransmit = true;
  config.network.batch_interval = 4;  // coalesce reports up to 4 slots
  config.network.seed = 42;
  config.observability.metrics = !metrics_path.empty() || !json_path.empty();
  config.observability.tracing = !trace_path.empty();
  core::SlidingSystem system(config);

  std::cout << "engine: " << system.runner().name() << " ("
            << system.runner().num_threads() << " threads), shards: "
            << system.num_shards() << ", wire horizon: "
            << system.bus().delivery_horizon() << " slots\n\n";

  // Feed 600 slots of traffic, querying the merged window sample as we
  // go. Queries are validity-aware: only tuples whose expiry is beyond
  // the query slot are merged.
  util::SplitMix64 gen(1);
  for (sim::Slot t = 0; t < 600; ++t) {
    std::vector<std::pair<sim::NodeId, std::uint64_t>> xs;
    for (int i = 0; i < 6; ++i) {
      xs.emplace_back(static_cast<sim::NodeId>(gen.next() % config.num_sites),
                      1 + gen.next() % 3000);
    }
    SlotSource source(t, std::move(xs));
    system.run(source);
    if ((t + 3) % 150 == 0) {
      // About to read every shard: use the per-shard flush hook so
      // reports still coalescing in the batcher get on the wire now
      // instead of waiting out the 4-slot batch deadline. They still
      // need a link flight (1.5 + up to 0.5 jitter slots here), which
      // is why the flush runs two slots before the query.
      auto& net = dynamic_cast<net::SimNetwork&>(system.bus());
      for (std::uint32_t j = 0; j < system.num_shards(); ++j) {
        net.flush_shard(j);
      }
    }
    if ((t + 1) % 150 == 0) {
      // Query time is a quiesced point: bridge the counters into the
      // trace timeline (no-op unless both instruments are on).
      system.observability().sample_counters(static_cast<double>(t));
      const auto sample = system.sample(t);  // merged across the 4 shards
      std::cout << "slot " << t << ": window sample {";
      for (std::size_t i = 0; i < sample.size(); ++i) {
        std::cout << (i == 0 ? "" : ", ") << sample[i];
      }
      std::cout << "}\n";
    }
  }

  // Per-shard accounting: the message counters partition exactly, and
  // the RoutedSite ring-lookup cache absorbed most routing decisions.
  std::cout << "\nwire messages: " << system.bus().counters().total << "\n";
  for (std::uint32_t j = 0; j < system.num_shards(); ++j) {
    std::cout << "  shard " << j << ": "
              << system.bus().coordinator_counters(j).total << "\n";
  }
  const auto lookups = system.route_cache_lookups();
  std::cout << "route-cache hit rate: "
            << 100.0 * static_cast<double>(system.route_cache_hits()) /
                   static_cast<double>(lookups)
            << "% of " << lookups << " lookups\n";
  const auto& net = dynamic_cast<const net::SimNetwork&>(system.bus());
  std::cout << "drops / retransmissions: " << net.stats().drops << " / "
            << net.stats().retransmissions << "\n";

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    out << system.observability().prometheus();
    std::cout << "metrics snapshot written to " << metrics_path << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << system.observability().json();
    std::cout << "JSON snapshot written to " << json_path << "\n";
  }
  if (!trace_path.empty()) {
    system.observability().write_trace(trace_path);
    std::cout << "trace written to " << trace_path << " ("
              << system.observability().tracer()->size() << " events)\n";
  }
  return 0;
}
