// Walkthrough: running the paper's infinite-window protocol over a
// realistic wire instead of the idealized zero-delay network.
//
//   $ ./lossy_network
//
// Builds the same deployment as examples/quickstart.cpp, but dials in
// latency, jitter, loss with retransmission, and site->coordinator
// batching via SystemConfig::network. The run stays bit-reproducible:
// all wire randomness comes from NetworkConfig::seed.
#include <iostream>

#include "core/system.h"
#include "net/sim_network.h"
#include "stream/generators.h"
#include "stream/partitioner.h"

int main() {
  using namespace dds;

  // A wire with two-slot one-way latency (+- jitter), 5% packet loss
  // repaired by retransmission, and reports coalesced for up to three
  // slots before shipping.
  net::NetworkConfig network;
  network.link.latency = 2.0;
  network.link.jitter = 1.0;
  network.link.drop_rate = 0.05;
  network.link.retransmit = true;
  network.batch_interval = 3;
  network.seed = 42;

  core::SystemConfig config;
  config.num_sites = 8;
  config.sample_size = 16;
  config.seed = 7;
  config.network = network;  // nontrivial -> deploys on net::SimNetwork
  core::InfiniteSystem system(config);

  // 100k Zipf-skewed arrivals spread uniformly over the sites.
  stream::ZipfStream input(/*n=*/100000, /*domain=*/20000, /*alpha=*/1.1,
                           /*seed=*/1);
  auto source = stream::make_partitioner(stream::Distribution::kRandom, input,
                                         config.num_sites, /*seed=*/2);
  system.run(*source);

  const auto& sample = system.coordinator().sample();
  std::cout << "distinct sample (s=" << sample.capacity()
            << "): " << sample.size() << " elements\n";

  // Transport-level accounting. counters() is the wire view: batches
  // count once, retransmissions count every attempt.
  const auto& wire = system.bus().counters();
  std::cout << "wire messages:     " << wire.total << "\n"
            << "wire bytes:        " << wire.bytes << "\n";

  // The event-driven transport also tracks the logical (protocol) view
  // and the wire pathologies.
  const auto& sim = dynamic_cast<const net::SimNetwork&>(system.bus());
  const auto& logical = sim.logical_counters();
  const auto& stats = sim.stats();
  std::cout << "protocol messages: " << logical.total << "\n"
            << "batches flushed:   " << stats.batches_flushed << " (carrying "
            << stats.batched_messages << " reports)\n"
            << "drops / retries:   " << stats.drops << " / "
            << stats.retransmissions << "\n"
            << "wire / protocol:   "
            << static_cast<double>(wire.total) /
                   static_cast<double>(logical.total)
            << "x  (batching saves messages, retransmission adds them)\n";
  return 0;
}
