// Sliding-window dashboard — Chapter 4's protocol in action.
//
// A security dashboard wants a live uniform sample of the DISTINCT
// source identities seen across k sensors in the last w time slots —
// recent activity only, stale identities age out. This example drives
// the sliding-window deployment through bursty synthetic traffic and
// periodically prints what an operator would see: the current sample,
// the per-sensor candidate-set sizes (the treap T_i of Algorithm 3),
// and the communication spent so far.
//
//   ./build/examples/sliding_window_dashboard [--sensors 6] [--window 200]
#include <cstdio>
#include <vector>

#include "core/system.h"
#include "stream/element.h"
#include "stream/generators.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  cli.flag("sensors", "number of sensors (sites)", "6");
  cli.flag("window", "window size in slots", "200");
  cli.flag("slots", "number of slots to simulate", "2000");
  cli.flag("sample-size", "window sample size (parallel instances)", "4");
  cli.flag("seed", "seed", "3");
  if (!cli.parse(argc, argv)) return 1;

  const auto sensors = static_cast<std::uint32_t>(cli.get_uint("sensors"));
  const auto window = static_cast<sim::Slot>(cli.get_uint("window"));
  const auto slots = static_cast<sim::Slot>(cli.get_uint("slots"));
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const auto seed = cli.get_uint("seed");

  core::SlidingSystemConfig config;
  config.num_sites = sensors;
  config.window = window;
  config.sample_size = s;
  config.seed = seed;
  core::SlidingSystem dashboard(config);

  /// One slot of traffic: bursty — occasionally a surge of fresh
  /// identities, otherwise a trickle over a small hot set.
  class SlotTraffic final : public sim::ArrivalSource {
   public:
    SlotTraffic(sim::Slot slot, std::uint32_t sensors,
                util::Xoshiro256StarStar& rng, std::uint64_t& next_fresh)
        : slot_(slot) {
      const bool surge = rng.next_below(100) < 5;  // 5% surge slots
      const std::uint64_t count = surge ? 20 : 1 + rng.next_below(4);
      for (std::uint64_t i = 0; i < count; ++i) {
        const bool fresh = surge || rng.next_below(10) < 3;
        const stream::Element e =
            fresh ? util::mix64(0xF00D ^ ++next_fresh)
                  : util::mix64(1 + rng.next_below(50));
        arrivals_.push_back(
            {slot_, static_cast<sim::NodeId>(rng.next_below(sensors)), e});
      }
    }
    std::optional<sim::Arrival> next() override {
      if (pos_ >= arrivals_.size()) return std::nullopt;
      return arrivals_[pos_++];
    }

   private:
    sim::Slot slot_;
    std::vector<sim::Arrival> arrivals_;
    std::size_t pos_ = 0;
  };

  util::Xoshiro256StarStar rng(seed + 100);
  std::uint64_t next_fresh = 0;
  std::uint64_t last_total = 0;

  std::printf("%-8s %-10s %-24s %-14s %s\n", "slot", "window-d", "sample",
              "sum |T_i|", "msgs (delta)");
  for (sim::Slot t = 0; t < slots; ++t) {
    SlotTraffic traffic(t, sensors, rng, next_fresh);
    dashboard.run(traffic);

    if ((t + 1) % (slots / 10) == 0) {
      const auto sample = dashboard.coordinator().sample(t);
      std::string sample_str;
      for (std::size_t j = 0; j < sample.size() && j < 3; ++j) {
        sample_str += std::to_string(sample[j] % 100000) + " ";
      }
      const auto total = dashboard.bus().counters().total;
      std::printf("%-8lld %-10s %-24s %-14zu %llu (+%llu)\n",
                  static_cast<long long>(t),
                  sample.empty() ? "empty" : "active", sample_str.c_str(),
                  dashboard.total_site_state(),
                  static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(total - last_total));
      last_total = total;
    }
  }

  const auto& c = dashboard.bus().counters();
  std::printf("\n%lld slots, window %lld: %llu messages total; per-sensor "
              "candidate memory stayed at ~%zu tuples (O(s log window "
              "distinct), Lemma 10)\n",
              static_cast<long long>(slots), static_cast<long long>(window),
              static_cast<unsigned long long>(c.total),
              dashboard.total_site_state() / sensors);
  return 0;
}
