// Quickstart: maintain a distinct sample over a 5-site distributed
// stream and answer queries from the coordinator.
//
//   cmake --build build && ./build/examples/quickstart
//
// Walks through the core API: configure a deployment, feed it a stream
// through a distribution strategy, read the sample, and estimate the
// number of distinct elements — all while the message counters show what
// the protocol actually paid.
#include <cstdio>

#include "core/system.h"
#include "query/estimators.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "util/stats.h"

int main() {
  using namespace dds;

  // A deployment: k = 5 sites + coordinator, distinct sample of s = 16,
  // MurmurHash2 (the paper's hash), deterministic under the seed.
  core::SystemConfig config;
  config.num_sites = 5;
  config.sample_size = 16;
  config.seed = 2024;
  core::InfiniteSystem system(config);

  // A workload: 200k elements drawn uniformly from 10k identifiers
  // (heavy duplication), dealt to sites uniformly at random.
  stream::UniformStream input(200'000, 10'000, /*seed=*/7);
  stream::RandomPartitioner source(input, config.num_sites, /*seed=*/8);

  std::puts("feeding 200,000 elements (10,000 distinct ids) to 5 sites...");
  system.run(source);

  // Query 1: the distinct sample itself.
  const auto& sample = system.coordinator().sample();
  std::printf("sample size: %zu (requested %zu)\n", sample.size(),
              config.sample_size);
  std::printf("three sampled elements: ");
  const auto elements = sample.elements();
  for (std::size_t i = 0; i < 3 && i < elements.size(); ++i) {
    std::printf("%llu ", static_cast<unsigned long long>(elements[i]));
  }
  std::puts("");

  // Query 2: how many distinct elements has the whole system seen?
  const double d_hat = query::estimate_distinct(sample);
  std::printf("estimated distinct count: %.0f (true: ~10,000; expected "
              "relative error ~%.0f%%)\n",
              d_hat, 100.0 * query::distinct_relative_error(sample.size()));

  // Query 3: distinct elements satisfying a predicate supplied at query
  // time (the frequency-independence of distinct sampling is exactly
  // what makes this legal).
  const double evens = query::estimate_distinct_where(
      sample, [](stream::Element e) { return e % 2 == 0; });
  std::printf("estimated distinct even ids: %.0f (true: ~5,000)\n", evens);

  // What did it cost? The message counters are measured at the bus.
  const auto& counters = system.bus().counters();
  std::printf("messages: %llu total (%llu reports + %llu replies) for "
              "200,000 arrivals — %.3f%% of ship-everything\n",
              static_cast<unsigned long long>(counters.total),
              static_cast<unsigned long long>(counters.site_to_coordinator),
              static_cast<unsigned long long>(counters.coordinator_to_site),
              100.0 * static_cast<double>(counters.total) / 200'000.0);
  std::printf("analytic bound 2ks(1+ln(d/s)): %.0f messages\n",
              util::infinite_window_upper_bound(config.num_sites,
                                                config.sample_size, 10'000));
  return 0;
}
