// Network flow monitor — the paper's OC48 scenario.
//
// k peering-link monitors each observe a stream of (src IP, dst IP)
// flows; a central coordinator continuously maintains a distinct sample
// of flows across all links. At any point an operator can ask questions
// about the population of DISTINCT flows — independent of how chatty
// each flow is — such as "how many distinct flows involve subnet X?".
//
//   ./build/examples/network_flow_monitor [--links 8] [--flows 500000]
#include <cstdio>
#include <string>

#include "core/system.h"
#include "query/estimators.h"
#include "stream/element.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using dds::stream::Element;

/// Synthesizes a flow: Zipf-popular (src, dst) pairs, like real peering
/// traffic. The subnet of the source is recoverable from the key so
/// query-time predicates can dissect the sample.
class FlowStream final : public dds::stream::ElementStream {
 public:
  FlowStream(std::uint64_t n, std::uint64_t pair_domain, std::uint64_t seed)
      : zipf_(n, pair_domain, 1.05, seed) {}

  std::optional<Element> next() override {
    const auto rank = zipf_.next();
    if (!rank) return std::nullopt;
    return *rank;
  }
  std::uint64_t length() const noexcept override { return zipf_.length(); }

 private:
  dds::stream::ZipfStream zipf_;
};

/// "Subnet" of a flow key: an 8-bit slice — stable per flow, uniform
/// across flows.
std::uint32_t subnet_of(Element flow) { return flow >> 56; }

}  // namespace

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  cli.flag("links", "number of monitored links (sites)", "8");
  cli.flag("flows", "number of observed packets", "500000");
  cli.flag("pairs", "distinct (src,dst) pair domain", "60000");
  cli.flag("sample-size", "distinct sample size at the coordinator", "256");
  cli.flag("seed", "seed", "11");
  if (!cli.parse(argc, argv)) return 1;

  const auto links = static_cast<std::uint32_t>(cli.get_uint("links"));
  const auto flows = cli.get_uint("flows");
  const auto pairs = cli.get_uint("pairs");
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const auto seed = cli.get_uint("seed");

  std::printf("monitoring %u links, %llu packets, ~%llu distinct flows, "
              "sample size %zu\n",
              links, static_cast<unsigned long long>(flows),
              static_cast<unsigned long long>(pairs), s);

  core::SystemConfig config{links, s, hash::HashKind::kMurmur2, seed};
  core::InfiniteSystem monitor(config, /*eager_threshold=*/false,
                               /*suppress_duplicates=*/true);

  FlowStream traffic(flows, pairs, seed + 1);
  // Packets of a flow can appear on any link (asymmetric routing):
  // random distribution.
  stream::RandomPartitioner fabric(traffic, links, seed + 2);
  monitor.run(fabric);

  const auto& sample = monitor.coordinator().sample();
  const double distinct_flows = query::estimate_distinct(sample);
  std::printf("\nestimated distinct flows: %.0f\n", distinct_flows);

  // Operator drill-down: distinct flows per source region (a quarter of
  // the subnet space each, so every region holds ~ s/4 sample points —
  // enough for a meaningful estimate at this sample size).
  std::puts("distinct flows per source region (64 subnets each):");
  for (std::uint32_t region = 0; region < 4; ++region) {
    const double count = query::estimate_distinct_where(
        sample, [region](Element flow) {
          return subnet_of(flow) / 64 == region;
        });
    std::printf("  region %u (subnets %3u-%3u): ~%.0f distinct flows "
                "(true ~%.0f)\n",
                region, region * 64, region * 64 + 63, count,
                distinct_flows / 4.0);
  }

  const auto& c = monitor.bus().counters();
  std::printf("\ncommunication: %llu messages (%llu bytes) vs %llu packets "
              "shipped under centralized collection\n",
              static_cast<unsigned long long>(c.total),
              static_cast<unsigned long long>(c.bytes),
              static_cast<unsigned long long>(flows));
  std::printf("per-link state: O(1) — one threshold word each\n");
  return 0;
}
