// E-mail analytics — the paper's Enron scenario.
//
// Mail servers at k offices each observe (sender, recipient) deliveries;
// the coordinator maintains a distinct sample of communication pairs.
// Because the sample is over DISTINCT pairs, a pair that exchanged ten
// thousand messages counts once — the right notion for questions like
// "how many distinct communication relationships exist?" and "what
// fraction of relationships are internal?".
//
// This example also verifies the estimates against exact ground truth
// computed by brute force on the same synthetic corpus.
//
//   ./build/examples/email_analytics [--servers 6]
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "core/system.h"
#include "query/estimators.h"
#include "stream/element.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using dds::stream::Element;

/// A delivery: sender u, recipient v, both in [0, users). Pair
/// popularity is Zipf-like via rank mixing; the user ids are
/// recoverable for predicates.
struct Corpus {
  std::vector<Element> deliveries;
  std::uint64_t users;
};

Element make_pair_key(std::uint32_t sender, std::uint32_t recipient) {
  // Keep ids visible in the key (no mixing): sender in the high word.
  return (static_cast<std::uint64_t>(sender) << 32) | recipient;
}

std::uint32_t sender_of(Element pair) {
  return static_cast<std::uint32_t>(pair >> 32);
}

Corpus synthesize(std::uint64_t n, std::uint64_t users, std::uint64_t seed) {
  // Preferential-attachment flavour: both endpoints Zipf over users, so
  // a few hubs participate in many relationships.
  Corpus corpus;
  corpus.users = users;
  corpus.deliveries.reserve(n);
  dds::stream::ZipfStream sender_ranks(n, users, 1.1, seed);
  dds::stream::ZipfStream recipient_ranks(n, users, 1.1, seed + 1);
  dds::util::Xoshiro256StarStar shuffle(seed + 2);
  for (std::uint64_t i = 0; i < n; ++i) {
    // Permute ranks to user ids with a fixed odd multiplier so hubs are
    // spread over the id space.
    const auto su = static_cast<std::uint32_t>(
        (sender_ranks.next_rank() * 2654435761ULL) % users);
    const auto ru = static_cast<std::uint32_t>(
        (recipient_ranks.next_rank() * 2246822519ULL) % users);
    corpus.deliveries.push_back(make_pair_key(su, ru));
  }
  (void)shuffle;
  return corpus;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  cli.flag("servers", "number of mail servers (sites)", "6");
  cli.flag("deliveries", "number of deliveries", "400000");
  cli.flag("users", "number of user accounts", "30000");
  cli.flag("sample-size", "distinct sample size", "512");
  cli.flag("seed", "seed", "5");
  if (!cli.parse(argc, argv)) return 1;

  const auto servers = static_cast<std::uint32_t>(cli.get_uint("servers"));
  const auto n = cli.get_uint("deliveries");
  const auto users = cli.get_uint("users");
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const auto seed = cli.get_uint("seed");

  std::printf("synthesizing %llu deliveries among %llu users...\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(users));
  const Corpus corpus = synthesize(n, users, seed);

  // The hub accounts are the users holding the 20 most popular sender
  // ranks (the id permutation is fixed, so their ids are computable).
  std::unordered_set<std::uint32_t> hubs;
  for (std::uint64_t rank = 1; rank <= 20; ++rank) {
    hubs.insert(static_cast<std::uint32_t>((rank * 2654435761ULL) % users));
  }
  auto is_hub_sender = [&hubs](Element pair) {
    return hubs.contains(sender_of(pair));
  };

  // Ground truth by brute force (this is what the sketch avoids).
  std::unordered_set<Element> truth(corpus.deliveries.begin(),
                                    corpus.deliveries.end());
  std::uint64_t truth_from_hubs = 0;
  for (Element pair : truth) truth_from_hubs += is_hub_sender(pair) ? 1 : 0;

  // The distributed monitor.
  core::SystemConfig config{servers, s, hash::HashKind::kMurmur2, seed + 10};
  core::InfiniteSystem monitor(config, /*eager_threshold=*/false,
                               /*suppress_duplicates=*/true);
  stream::VectorStream replay(corpus.deliveries);
  stream::RoundRobinPartitioner fabric(replay, servers);
  monitor.run(fabric);

  const auto& sample = monitor.coordinator().sample();
  const double d_hat = query::estimate_distinct(sample);
  std::printf("\ndistinct communication pairs: estimated %.0f, true %zu "
              "(error %+.1f%%)\n",
              d_hat, truth.size(),
              100.0 * (d_hat - static_cast<double>(truth.size())) /
                  static_cast<double>(truth.size()));

  const double hubs_hat = query::estimate_distinct_where(sample, is_hub_sender);
  std::printf("relationships initiated by the 20 hub accounts: estimated "
              "%.0f, true %llu (error %+.1f%%)\n",
              hubs_hat, static_cast<unsigned long long>(truth_from_hubs),
              100.0 * (hubs_hat - static_cast<double>(truth_from_hubs)) /
                  static_cast<double>(truth_from_hubs));

  const double frac_hub = query::estimate_fraction_where(sample, is_hub_sender);
  std::printf("fraction of all relationships that a hub initiated: ~%.1f%%\n",
              100.0 * frac_hub);

  const auto& c = monitor.bus().counters();
  std::printf("\ncost: %llu messages for %llu deliveries (%.3f%%); "
              "exact answers would require shipping every delivery\n",
              static_cast<unsigned long long>(c.total),
              static_cast<unsigned long long>(n),
              100.0 * static_cast<double>(c.total) / static_cast<double>(n));
  return 0;
}
